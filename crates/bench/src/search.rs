//! Adversary search engine with witness shrinking.
//!
//! The sweep store (PR 8) made million-seed campaigns durable; this module
//! points that machinery *at the fault space itself*. A deterministic,
//! seeded generator samples [`ScenarioSpec`]s across the full adversary
//! surface — message drop/duplicate/corrupt grids, crash plans including
//! churn, delay models and targeted delay rules, topology partitions, GST,
//! and the `(n, t, k)` shape — and every sampled cell runs through the
//! streaming [`Runner`] (cache-aware, so a resumed campaign never
//! re-executes a computed cell).
//!
//! Outcomes fall into three classes (see [`classify`]):
//!
//! * **pass** — the checker accepted the run;
//! * **liveness refusal** — the checker refused termination, completeness,
//!   accuracy, or leadership. Under drops, partitions that never heal, or
//!   horizons shorter than the decision time, refusing to decide is the
//!   *honest* outcome — the paper's algorithms trade liveness, never
//!   safety;
//! * **checker violation** — a safety property broke (validity, agreement,
//!   decide-once, …). The only specs *expected* to produce these carry a
//!   corruption rule ([`expects_safety_violation`]): the algorithms have
//!   no payload authentication, so a corrupting channel can forge foreign
//!   estimates. A violation on any other spec is a genuine bug and is
//!   surfaced separately.
//!
//! Every expected violation enters the [`shrink`]er: greedy structural
//! passes (drop adversary rules, delay rules, topology epochs, islands
//! and overrides; weaken the crash plan; reduce `n`) interleaved with
//! binary searches over the numeric surface (horizon, GST, rule
//! percentage, corruption bound, rule and epoch windows), each candidate
//! re-run through the checker, iterated to a fixed point. The local
//! minimum is emitted as a canonical [`MinimalWitness`]: spec description,
//! fingerprint, seed, violated predicate, events-to-violation, and the
//! shrink trail — serialized as canonical JSON (sorted keys) so two runs
//! of the same search are bit-identical regardless of thread count.

use crate::json::Json;
use fd_core::KsetScenario;
use fd_detectors::scenario::{CrashPlan, Flavour, OracleChoice, Runner, ScenarioSpec, SlimReport};
use fd_detectors::{CheckOutcome, Scenario, ViolationClass};
use fd_grid::ChurnKsetScenario;
use fd_sim::{
    DelayModel, DelayRule, LinkOverride, MessageAdversary, MessageRule, PSet, ProcessId,
    RuleAction, SplitMix64, Time, TopologyEpoch, TopologySchedule, MAX_PROCESSES,
};
use std::collections::BTreeSet;

/// Schema tag stamped into every emitted witness document.
pub const WITNESS_SCHEMA: &str = "fd-minimal-witness/1";

/// Schema tag stamped into the top-level search report document.
pub const SEARCH_SCHEMA: &str = "fd-search-report/1";

/// Stream label separating the generator's draws from every other
/// consumer of the search seed.
const SEARCH_STREAM: u64 = 0x5EA2_0C11;

// ---------------------------------------------------------------------------
// Outcome classification
// ---------------------------------------------------------------------------

/// What one `(spec, seed)` cell did, viewed through the violation class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunClass {
    /// The checker accepted the run.
    Pass,
    /// The checker refused a liveness property (termination, completeness,
    /// accuracy, leadership) — the honest outcome under message loss,
    /// unhealed partitions, or too-short horizons.
    LivenessRefusal,
    /// A safety property broke. Never acceptable unless the spec carries
    /// a corruption rule (see [`expects_safety_violation`]).
    Violation,
}

/// Classifies a check outcome by its machine-readable violation class.
pub fn classify(check: &CheckOutcome) -> RunClass {
    if check.ok {
        RunClass::Pass
    } else if check.class.is_safety() {
        RunClass::Violation
    } else {
        RunClass::LivenessRefusal
    }
}

/// Whether a spec is *expected* to be able to break safety: only payload
/// corruption can — the algorithms carry no authentication, so a
/// corrupting channel forges estimates. Drops, duplicates, delays,
/// partitions, and crashes within the resilience bound must never break
/// a safety property; a [`RunClass::Violation`] on a spec where this
/// returns `false` is a genuine checker or algorithm bug.
pub fn expects_safety_violation(spec: &ScenarioSpec) -> bool {
    spec.adversary
        .rules()
        .iter()
        .any(|r| r.pct > 0 && matches!(r.action, RuleAction::Corrupt { bound } if bound > 0))
}

/// The scenario a spec runs under: churn plans use the churn-aware
/// scenario (plain k-set agreement has no notion of joiners), everything
/// else the paper's Figure 3 algorithm.
pub fn scenario_for(spec: &ScenarioSpec) -> &'static dyn Scenario {
    if matches!(spec.crashes, CrashPlan::Churn { .. }) {
        &ChurnKsetScenario
    } else {
        &KsetScenario
    }
}

/// One cached, cache-keyed run of `spec` at `seed` (goes through
/// [`Runner::sweep_fold`], the engine's only cache-aware path, so shrink
/// candidates hit the sweep store on resumed campaigns).
fn run_one(runner: &Runner, spec: &ScenarioSpec, seed: u64) -> SlimReport {
    runner
        .sweep_fold(
            scenario_for(spec),
            spec,
            seed..seed + 1,
            None,
            |acc: &mut Option<SlimReport>, slim| *acc = Some(slim),
        )
        .expect("single-seed sweep produces exactly one report")
}

/// One line summarizing a spec for labels and witness descriptions.
pub fn describe_spec(spec: &ScenarioSpec) -> String {
    let mut s = format!(
        "n={} t={} k={} gst={} horizon={} adv={} topo={} crashes={:?}",
        spec.n,
        spec.t,
        spec.k,
        spec.gst.0,
        spec.max_time.0,
        spec.adversary.describe(),
        spec.topology.describe(),
        spec.crashes,
    );
    if !spec.rules.is_empty() {
        s.push_str(&format!(" delay_rules={}", spec.rules.len()));
    }
    if spec.catch_up {
        s.push_str(" catch_up");
    }
    s
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

/// Search campaign parameters. Everything the campaign does is a pure
/// function of this configuration — same config, same witnesses,
/// bit-identically, at any thread count.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Root seed of the spec generator (not of the runs — each spec is
    /// swept over `0..seeds_per_spec` run seeds).
    pub search_seed: u64,
    /// Number of *sampled* specs, on top of the fixed probe specs.
    pub budget: u64,
    /// Run seeds swept per spec.
    pub seeds_per_spec: u64,
    /// Cap on witnesses shrunk and emitted (further violations are still
    /// counted).
    pub max_witnesses: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            search_seed: 0,
            budget: 32,
            seeds_per_spec: 4,
            max_witnesses: 3,
        }
    }
}

/// The fixed probe specs emitted before any sampling: known checker
/// violations seeded into every campaign, so even a `--budget 0` run
/// exercises the find → shrink → emit pipeline end to end.
pub fn probe_specs() -> Vec<ScenarioSpec> {
    // Bounded corruption on every link: forges foreign estimates, breaking
    // validity (seed 0) and agreement (seed 1) — the known negative
    // witness from the adversary test suite.
    vec![ScenarioSpec::new(5, 2)
        .kz(1)
        .adversary(MessageAdversary::from_rules(vec![MessageRule::corrupt(
            40, 7,
        )]))
        .max_time(Time(60_000))]
}

/// The deterministic spec stream of a campaign: probes first, then
/// `cfg.budget` sampled specs drawn from `cfg.search_seed`.
pub fn generate(cfg: &SearchConfig) -> Vec<ScenarioSpec> {
    let mut specs = probe_specs();
    let mut rng = SplitMix64::new(cfg.search_seed).stream(SEARCH_STREAM);
    for _ in 0..cfg.budget {
        specs.push(sample_spec(&mut rng));
    }
    specs
}

/// Draws one spec across the full adversary surface. Every combination
/// emitted is valid by construction (`t < n`, crash counts within the
/// bound, churn only when `2t ≤ n`), so `materialize` never panics.
fn sample_spec(rng: &mut SplitMix64) -> ScenarioSpec {
    const SHAPES: [(usize, usize, usize); 7] = [
        (4, 1, 1),
        (5, 2, 1),
        (5, 2, 2),
        (6, 2, 2),
        (7, 3, 2),
        (8, 3, 1),
        (8, 3, 3),
    ];
    let (n, t, k) = SHAPES[rng.below(SHAPES.len() as u64) as usize];
    let max_time = 2_000 + rng.below(5) * 1_000;
    let gst = 100 + rng.below(4) * 100;
    let mut spec = ScenarioSpec::new(n, t)
        .kz(k)
        .gst(Time(gst))
        .max_time(Time(max_time));

    spec = spec.delay(match rng.below(4) {
        0 => DelayModel::default(),
        1 => DelayModel::Fixed(1 + rng.below(8)),
        2 => {
            let lo = 1 + rng.below(5);
            DelayModel::Uniform {
                lo,
                hi: lo + 1 + rng.below(20),
            }
        }
        _ => DelayModel::Spiky {
            lo: 1,
            hi: 10,
            spike_pct: (5 + rng.below(30)) as u8,
            factor: 2 + rng.below(20),
        },
    });

    spec = spec.crashes(match rng.below(5) {
        0 => CrashPlan::None,
        1 => CrashPlan::Random {
            f: rng.below(t as u64 + 1) as usize,
            by: Time(1 + rng.below(max_time / 2)),
        },
        2 => CrashPlan::Initial {
            f: rng.below(t as u64 + 1) as usize,
        },
        3 => CrashPlan::Anarchic {
            by: Time(1 + rng.below(max_time)),
        },
        4 if 2 * t <= n => CrashPlan::Churn {
            crash_by: Time(1 + rng.below(max_time / 2)),
            rejoin_after: 1 + rng.below(500),
        },
        _ => CrashPlan::None,
    });

    let mut rules = Vec::new();
    for _ in 0..rng.below(3) {
        let mut rule = match rng.below(3) {
            0 => MessageRule::drop((5 + rng.below(61)) as u8),
            1 => MessageRule::duplicate((5 + rng.below(61)) as u8),
            _ => MessageRule::corrupt((5 + rng.below(46)) as u8, 1 + rng.below(8)),
        };
        if rng.chance(1, 2) {
            let a = rng.below(max_time);
            let b = a + 1 + rng.below(max_time - a);
            rule = rule.window(Time(a), Time(b));
        }
        if rng.chance(1, 4) {
            let mut from = PSet::new();
            for p in 0..n {
                if rng.chance(1, 2) {
                    from.insert(ProcessId(p));
                }
            }
            if from.is_empty() {
                from = PSet::full(n);
            }
            rule = rule.links(from, PSet::full(MAX_PROCESSES));
        }
        rules.push(rule);
    }
    spec = spec.adversary(MessageAdversary::from_rules(rules));

    if rng.chance(1, 4) {
        spec = spec.rule(DelayRule::silence_until(
            PSet::full(n),
            PSet::full(n),
            Time(1 + rng.below(gst)),
        ));
    }

    if rng.chance(1, 3) {
        let cut = 1 + rng.below(n as u64 - 1) as usize;
        let mut a = PSet::new();
        let mut b = PSet::new();
        for p in 0..n {
            if p < cut {
                a.insert(ProcessId(p));
            } else {
                b.insert(ProcessId(p));
            }
        }
        let heal = Time(1 + rng.below(2 * max_time));
        spec = spec.topology(TopologySchedule::partition_until(vec![a, b], heal));
    }

    if matches!(spec.crashes, CrashPlan::Churn { .. }) && rng.chance(1, 2) {
        spec = spec.catch_up(true);
    }
    spec
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// One accepted shrink step: the pass that fired, what it did, and the
/// spec it produced (still violating — the soundness tests replay each
/// trail spec through the checker).
#[derive(Clone, Debug)]
pub struct ShrinkStep {
    /// Name of the shrink pass that produced this step.
    pub pass: &'static str,
    /// Human-readable account of the mutation.
    pub description: String,
    /// The spec after the step (re-verified to still violate).
    pub spec: ScenarioSpec,
}

/// Result of shrinking one witness to a local minimum.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The locally minimal spec (no single pass can simplify it further).
    pub spec: ScenarioSpec,
    /// Every accepted step, in order; replaying any trail spec reproduces
    /// the violation.
    pub trail: Vec<ShrinkStep>,
    /// Checker executions spent (cache lookups included).
    pub runs: u64,
}

struct Shrinker<'a> {
    runner: &'a Runner,
    seed: u64,
    class: ViolationClass,
    runs: u64,
}

type Pass = fn(&mut Shrinker<'_>, &ScenarioSpec) -> Option<(String, ScenarioSpec)>;

/// Pass order matters for cost, not correctness: structural drops first
/// (few candidates at the original horizon), then the horizon bisection —
/// after which every remaining candidate runs at the shrunk horizon.
const PASSES: [(&str, Pass); 11] = [
    ("drop-adv-rule", pass_drop_adv_rule),
    ("drop-delay-rule", pass_drop_delay_rule),
    ("drop-topo-epoch", pass_drop_topo_epoch),
    ("simplify-topo-epoch", pass_simplify_topo_epoch),
    ("weaken-crashes", pass_weaken_crashes),
    ("shrink-horizon", pass_shrink_horizon),
    ("reduce-n", pass_reduce_n),
    ("shrink-gst", pass_shrink_gst),
    ("shrink-rule-pct", pass_shrink_rule_pct),
    ("shrink-rule-bound", pass_shrink_rule_bound),
    ("narrow-rule-window", pass_narrow_rule_window),
];

/// Shrinks `start` (known to violate `class` at `seed`) to a local
/// minimum: repeatedly applies the first pass that yields a strictly
/// simpler spec still violating the *same* class at the same seed, until
/// no pass fires. Fully sequential and deterministic — the trail and the
/// minimum depend only on `(start, seed, class)`.
pub fn shrink(
    runner: &Runner,
    start: &ScenarioSpec,
    seed: u64,
    class: ViolationClass,
) -> ShrinkOutcome {
    let mut sh = Shrinker {
        runner,
        seed,
        class,
        runs: 0,
    };
    let mut current = start.clone();
    let mut trail = Vec::new();
    'outer: loop {
        for (name, pass) in PASSES {
            if let Some((description, next)) = pass(&mut sh, &current) {
                trail.push(ShrinkStep {
                    pass: name,
                    description,
                    spec: next.clone(),
                });
                current = next;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkOutcome {
        spec: current,
        trail,
        runs: sh.runs,
    }
}

impl Shrinker<'_> {
    /// Does `spec` still violate the same class at the witness seed?
    fn violates(&mut self, spec: &ScenarioSpec) -> bool {
        self.runs += 1;
        let slim = run_one(self.runner, spec, self.seed);
        !slim.check.ok && slim.check.class == self.class
    }

    /// Least `v` in `[lo, hi]` with `still(v)` violating, assuming
    /// `still(hi)` does (delta-debugging style: the predicate need not be
    /// monotone — the result is then just a deterministic local choice).
    fn bisect_down(
        &mut self,
        lo: u64,
        hi: u64,
        mut still: impl FnMut(&mut Self, u64) -> bool,
    ) -> u64 {
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if still(self, mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        hi
    }

    /// Greatest `v` in `[lo, hi]` with `still(v)` violating, assuming
    /// `still(lo)` does.
    fn bisect_up(
        &mut self,
        lo: u64,
        hi: u64,
        mut still: impl FnMut(&mut Self, u64) -> bool,
    ) -> u64 {
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if still(self, mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

fn pass_drop_adv_rule(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    for idx in 0..spec.adversary.rules().len() {
        let mut cand = spec.clone();
        cand.adversary = spec.adversary.without_rule(idx);
        if sh.violates(&cand) {
            return Some((format!("dropped message rule #{idx}"), cand));
        }
    }
    None
}

fn pass_drop_delay_rule(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    for idx in 0..spec.rules.len() {
        let mut cand = spec.clone();
        cand.rules.remove(idx);
        if sh.violates(&cand) {
            return Some((format!("dropped delay rule #{idx}"), cand));
        }
    }
    None
}

fn pass_drop_topo_epoch(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    for idx in 0..spec.topology.epochs().len() {
        let mut cand = spec.clone();
        cand.topology = spec.topology.without_epoch(idx);
        if sh.violates(&cand) {
            return Some((format!("dropped topology epoch #{idx}"), cand));
        }
    }
    None
}

fn pass_simplify_topo_epoch(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    for (e, ep) in spec.topology.epochs().iter().enumerate() {
        for i in 0..ep.islands.len() {
            let mut cand = spec.clone();
            cand.topology = spec
                .topology
                .with_epoch_replaced(e, ep.clone().without_island(i));
            if sh.violates(&cand) {
                return Some((format!("dropped island #{i} of epoch #{e}"), cand));
            }
        }
        for o in 0..ep.overrides.len() {
            let mut cand = spec.clone();
            cand.topology = spec
                .topology
                .with_epoch_replaced(e, ep.clone().without_override(o));
            if sh.violates(&cand) {
                return Some((format!("dropped override #{o} of epoch #{e}"), cand));
            }
        }
        // Heals past the horizon are all equivalent; clamp, then bisect
        // the heal time down to the earliest still-violating tick.
        let horizon_plus = spec.max_time.0 + 1;
        if ep.until.0 > horizon_plus {
            let mut cand = spec.clone();
            cand.topology = spec
                .topology
                .with_epoch_replaced(e, ep.clone().with_window(ep.from, Time(horizon_plus)));
            if sh.violates(&cand) {
                return Some((format!("clamped epoch #{e} heal to horizon"), cand));
            }
        } else if ep.until.0 > ep.from.0 + 1 {
            let with_until = |spec: &ScenarioSpec, ep: &TopologyEpoch, until: u64| {
                let mut cand = spec.clone();
                cand.topology = spec
                    .topology
                    .with_epoch_replaced(e, ep.clone().with_window(ep.from, Time(until)));
                cand
            };
            let min = sh.bisect_down(ep.from.0 + 1, ep.until.0, |sh, v| {
                sh.violates(&with_until(spec, ep, v))
            });
            if min < ep.until.0 {
                return Some((
                    format!("shrank epoch #{e} heal {} -> {min}", ep.until.0),
                    with_until(spec, ep, min),
                ));
            }
        }
    }
    None
}

fn pass_weaken_crashes(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    let mut candidates: Vec<(String, CrashPlan)> = Vec::new();
    match spec.crashes {
        CrashPlan::None => {}
        CrashPlan::Random { f, by } => {
            candidates.push(("removed crash plan".into(), CrashPlan::None));
            if f > 0 {
                candidates.push((
                    format!("reduced random crashes {f} -> {}", f - 1),
                    CrashPlan::Random { f: f - 1, by },
                ));
            }
        }
        CrashPlan::Initial { f } => {
            candidates.push(("removed crash plan".into(), CrashPlan::None));
            if f > 0 {
                candidates.push((
                    format!("reduced initial crashes {f} -> {}", f - 1),
                    CrashPlan::Initial { f: f - 1 },
                ));
            }
        }
        CrashPlan::Anarchic { .. } | CrashPlan::Churn { .. } | CrashPlan::Explicit(_) => {
            candidates.push(("removed crash plan".into(), CrashPlan::None));
        }
    }
    for (description, crashes) in candidates {
        let mut cand = spec.clone();
        cand.crashes = crashes;
        if sh.violates(&cand) {
            return Some((description, cand));
        }
    }
    if spec.catch_up {
        let mut cand = spec.clone();
        cand.catch_up = false;
        if sh.violates(&cand) {
            return Some(("disabled catch-up layer".into(), cand));
        }
    }
    None
}

fn pass_shrink_horizon(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    let cur = spec.max_time.0;
    if cur <= 1 {
        return None;
    }
    let with_horizon = |v: u64| {
        let mut cand = spec.clone();
        cand.max_time = Time(v);
        cand
    };
    let min = sh.bisect_down(1, cur, |sh, v| sh.violates(&with_horizon(v)));
    (min < cur).then(|| (format!("shrank horizon {cur} -> {min}"), with_horizon(min)))
}

fn pass_reduce_n(sh: &mut Shrinker<'_>, spec: &ScenarioSpec) -> Option<(String, ScenarioSpec)> {
    let n = spec.n;
    if n <= 2 || n - 1 <= spec.t || n - 1 < spec.k {
        return None;
    }
    if matches!(spec.crashes, CrashPlan::Churn { .. }) && 2 * spec.t > n - 1 {
        return None;
    }
    let mut cand = spec.clone();
    cand.n = n - 1;
    sh.violates(&cand)
        .then(|| (format!("reduced n {n} -> {}", n - 1), cand))
}

fn pass_shrink_gst(sh: &mut Shrinker<'_>, spec: &ScenarioSpec) -> Option<(String, ScenarioSpec)> {
    let cur = spec.gst.0;
    if cur == 0 {
        return None;
    }
    let with_gst = |v: u64| {
        let mut cand = spec.clone();
        cand.gst = Time(v);
        cand
    };
    let min = sh.bisect_down(0, cur, |sh, v| sh.violates(&with_gst(v)));
    (min < cur).then(|| (format!("shrank gst {cur} -> {min}"), with_gst(min)))
}

fn pass_shrink_rule_pct(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    for (idx, rule) in spec.adversary.rules().iter().enumerate() {
        if rule.pct <= 1 {
            continue;
        }
        let with_pct = |p: u64| {
            let mut cand = spec.clone();
            cand.adversary = spec
                .adversary
                .with_rule_replaced(idx, rule.clone().with_pct(p as u8));
            cand
        };
        let min = sh.bisect_down(1, rule.pct as u64, |sh, v| sh.violates(&with_pct(v)));
        if min < rule.pct as u64 {
            return Some((
                format!("shrank rule #{idx} pct {} -> {min}", rule.pct),
                with_pct(min),
            ));
        }
    }
    None
}

fn pass_shrink_rule_bound(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    for (idx, rule) in spec.adversary.rules().iter().enumerate() {
        let RuleAction::Corrupt { bound } = rule.action else {
            continue;
        };
        if bound <= 1 {
            continue;
        }
        let with_bound = |b: u64| {
            let mut cand = spec.clone();
            cand.adversary = spec
                .adversary
                .with_rule_replaced(idx, rule.clone().with_bound(b));
            cand
        };
        let min = sh.bisect_down(1, bound, |sh, v| sh.violates(&with_bound(v)));
        if min < bound {
            return Some((
                format!("shrank rule #{idx} corruption bound {bound} -> {min}"),
                with_bound(min),
            ));
        }
    }
    None
}

fn pass_narrow_rule_window(
    sh: &mut Shrinker<'_>,
    spec: &ScenarioSpec,
) -> Option<(String, ScenarioSpec)> {
    let horizon_plus = spec.max_time.0 + 1;
    for (idx, rule) in spec.adversary.rules().iter().enumerate() {
        let replace = |spec: &ScenarioSpec, rule: MessageRule| {
            let mut cand = spec.clone();
            cand.adversary = spec.adversary.with_rule_replaced(idx, rule);
            cand
        };
        // Windows past the horizon are all equivalent; clamp first so the
        // bisection below starts from a finite bound.
        if rule.active_to.0 > horizon_plus {
            let cand = replace(
                spec,
                rule.clone().window(rule.active_from, Time(horizon_plus)),
            );
            if sh.violates(&cand) {
                return Some((format!("clamped rule #{idx} window to horizon"), cand));
            }
            continue;
        }
        if rule.active_to.0 > rule.active_from.0 + 1 {
            let min = sh.bisect_down(rule.active_from.0 + 1, rule.active_to.0, |sh, v| {
                sh.violates(&replace(
                    spec,
                    rule.clone().window(rule.active_from, Time(v)),
                ))
            });
            if min < rule.active_to.0 {
                return Some((
                    format!(
                        "shrank rule #{idx} window end {} -> {min}",
                        rule.active_to.0
                    ),
                    replace(spec, rule.clone().window(rule.active_from, Time(min))),
                ));
            }
            let max = sh.bisect_up(rule.active_from.0, rule.active_to.0 - 1, |sh, v| {
                sh.violates(&replace(spec, rule.clone().window(Time(v), rule.active_to)))
            });
            if max > rule.active_from.0 {
                return Some((
                    format!(
                        "raised rule #{idx} window start {} -> {max}",
                        rule.active_from.0
                    ),
                    replace(spec, rule.clone().window(Time(max), rule.active_to)),
                ));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Witness JSON codec
// ---------------------------------------------------------------------------

/// One `{pass, description}` record of the shrink trail as persisted in
/// the witness document (the full trail with intermediate specs stays
/// in-memory on [`ShrinkOutcome`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShrinkStepRecord {
    /// Name of the shrink pass.
    pub pass: String,
    /// What the pass did.
    pub description: String,
}

/// A minimal reproducer: the locally minimal spec, the run seed, the
/// violated predicate, and how it was reached. Serializes to canonical
/// JSON (sorted keys, exact u64 tokens) — two campaigns producing the
/// same witness emit byte-identical documents.
#[derive(Clone, Debug)]
pub struct MinimalWitness {
    /// Scenario the spec runs under (`kset_omega` or `kset_churn`).
    pub scenario: String,
    /// One-line spec description.
    pub description: String,
    /// `ScenarioSpec::fingerprint()` of the minimal spec.
    pub fingerprint: u64,
    /// Run seed reproducing the violation.
    pub seed: u64,
    /// The violated predicate.
    pub class: ViolationClass,
    /// The checker's account of the violation.
    pub detail: String,
    /// Simulator events to the violation (size of the reproducer).
    pub events: u64,
    /// The shrink trail that reached the minimum.
    pub shrink_steps: Vec<ShrinkStepRecord>,
    /// The minimal spec itself.
    pub spec: ScenarioSpec,
}

impl MinimalWitness {
    /// Canonical JSON document for this witness.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(WITNESS_SCHEMA)),
            ("scenario", Json::str(self.scenario.clone())),
            ("description", Json::str(self.description.clone())),
            ("fingerprint", Json::num_u64(self.fingerprint)),
            ("seed", Json::num_u64(self.seed)),
            ("class", Json::str(self.class.name())),
            ("detail", Json::str(self.detail.clone())),
            ("events", Json::num_u64(self.events)),
            (
                "shrink_steps",
                Json::Arr(
                    self.shrink_steps
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("pass", Json::str(s.pass.clone())),
                                ("description", Json::str(s.description.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("spec", spec_to_json(&self.spec)),
        ])
    }

    /// Parses a witness document (inverse of [`MinimalWitness::to_json`]).
    pub fn from_json(doc: &Json) -> Result<MinimalWitness, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("witness: missing schema")?;
        if schema != WITNESS_SCHEMA {
            return Err(format!("witness: unknown schema {schema:?}"));
        }
        let field = |k: &str| doc.get(k).ok_or_else(|| format!("witness: missing {k}"));
        let str_field = |k: &str| {
            field(k).and_then(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("witness: {k} is not a string"))
            })
        };
        let u64_field = |k: &str| {
            field(k).and_then(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("witness: {k} is not a u64"))
            })
        };
        let class_name = str_field("class")?;
        let class = ViolationClass::from_name(&class_name)
            .ok_or_else(|| format!("witness: unknown class {class_name:?}"))?;
        let mut shrink_steps = Vec::new();
        for step in field("shrink_steps")?
            .as_arr()
            .ok_or("witness: shrink_steps is not an array")?
        {
            shrink_steps.push(ShrinkStepRecord {
                pass: step
                    .get("pass")
                    .and_then(Json::as_str)
                    .ok_or("witness: step missing pass")?
                    .to_string(),
                description: step
                    .get("description")
                    .and_then(Json::as_str)
                    .ok_or("witness: step missing description")?
                    .to_string(),
            });
        }
        Ok(MinimalWitness {
            scenario: str_field("scenario")?,
            description: str_field("description")?,
            fingerprint: u64_field("fingerprint")?,
            seed: u64_field("seed")?,
            class,
            detail: str_field("detail")?,
            events: u64_field("events")?,
            shrink_steps,
            spec: spec_from_json(field("spec")?)?,
        })
    }
}

fn pset_to_json(set: PSet) -> Json {
    if set == PSet::full(MAX_PROCESSES) {
        Json::str("all")
    } else {
        Json::Arr(set.iter().map(|p| Json::num_u64(p.0 as u64)).collect())
    }
}

fn pset_from_json(doc: &Json) -> Result<PSet, String> {
    if doc.as_str() == Some("all") {
        return Ok(PSet::full(MAX_PROCESSES));
    }
    let ids = doc.as_arr().ok_or("pset: not \"all\" or an id array")?;
    let mut set = PSet::new();
    for id in ids {
        let id = id.as_u64().ok_or("pset: non-numeric id")? as usize;
        if id >= MAX_PROCESSES {
            return Err(format!("pset: id {id} out of range"));
        }
        set.insert(ProcessId(id));
    }
    Ok(set)
}

fn oracle_tag(oracle: OracleChoice) -> &'static str {
    match oracle {
        OracleChoice::None => "none",
        OracleChoice::Omega => "omega",
        OracleChoice::Sx(Flavour::Perpetual) => "sx:perpetual",
        OracleChoice::Sx(Flavour::Eventual) => "sx:eventual",
        OracleChoice::Phi(Flavour::Perpetual) => "phi:perpetual",
        OracleChoice::Phi(Flavour::Eventual) => "phi:eventual",
        OracleChoice::Psi => "psi",
        OracleChoice::SxPlusPhi(Flavour::Perpetual) => "sx_plus_phi:perpetual",
        OracleChoice::SxPlusPhi(Flavour::Eventual) => "sx_plus_phi:eventual",
        OracleChoice::Perfect(Flavour::Perpetual) => "perfect:perpetual",
        OracleChoice::Perfect(Flavour::Eventual) => "perfect:eventual",
    }
}

fn oracle_from_tag(tag: &str) -> Result<OracleChoice, String> {
    Ok(match tag {
        "none" => OracleChoice::None,
        "omega" => OracleChoice::Omega,
        "sx:perpetual" => OracleChoice::Sx(Flavour::Perpetual),
        "sx:eventual" => OracleChoice::Sx(Flavour::Eventual),
        "phi:perpetual" => OracleChoice::Phi(Flavour::Perpetual),
        "phi:eventual" => OracleChoice::Phi(Flavour::Eventual),
        "psi" => OracleChoice::Psi,
        "sx_plus_phi:perpetual" => OracleChoice::SxPlusPhi(Flavour::Perpetual),
        "sx_plus_phi:eventual" => OracleChoice::SxPlusPhi(Flavour::Eventual),
        "perfect:perpetual" => OracleChoice::Perfect(Flavour::Perpetual),
        "perfect:eventual" => OracleChoice::Perfect(Flavour::Eventual),
        other => return Err(format!("spec: unknown oracle {other:?}")),
    })
}

fn crashes_to_json(crashes: &CrashPlan) -> Json {
    match *crashes {
        CrashPlan::None => Json::obj([("kind", Json::str("none"))]),
        CrashPlan::Random { f, by } => Json::obj([
            ("kind", Json::str("random")),
            ("f", Json::num_u64(f as u64)),
            ("by", Json::num_u64(by.0)),
        ]),
        CrashPlan::Initial { f } => Json::obj([
            ("kind", Json::str("initial")),
            ("f", Json::num_u64(f as u64)),
        ]),
        CrashPlan::Anarchic { by } => {
            Json::obj([("kind", Json::str("anarchic")), ("by", Json::num_u64(by.0))])
        }
        CrashPlan::Churn {
            crash_by,
            rejoin_after,
        } => Json::obj([
            ("kind", Json::str("churn")),
            ("crash_by", Json::num_u64(crash_by.0)),
            ("rejoin_after", Json::num_u64(rejoin_after)),
        ]),
        // Explicit patterns carry an arbitrary authored history; they are
        // never produced by the generator and are not portable as JSON.
        CrashPlan::Explicit(_) => Json::obj([("kind", Json::str("explicit"))]),
    }
}

fn crashes_from_json(doc: &Json) -> Result<CrashPlan, String> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("crashes: missing kind")?;
    let u64_field = |k: &str| {
        doc.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("crashes: missing {k}"))
    };
    Ok(match kind {
        "none" => CrashPlan::None,
        "random" => CrashPlan::Random {
            f: u64_field("f")? as usize,
            by: Time(u64_field("by")?),
        },
        "initial" => CrashPlan::Initial {
            f: u64_field("f")? as usize,
        },
        "anarchic" => CrashPlan::Anarchic {
            by: Time(u64_field("by")?),
        },
        "churn" => CrashPlan::Churn {
            crash_by: Time(u64_field("crash_by")?),
            rejoin_after: u64_field("rejoin_after")?,
        },
        other => return Err(format!("crashes: unportable kind {other:?}")),
    })
}

fn delay_to_json(delay: &DelayModel) -> Json {
    match *delay {
        DelayModel::Fixed(d) => Json::obj([("kind", Json::str("fixed")), ("d", Json::num_u64(d))]),
        DelayModel::Uniform { lo, hi } => Json::obj([
            ("kind", Json::str("uniform")),
            ("lo", Json::num_u64(lo)),
            ("hi", Json::num_u64(hi)),
        ]),
        DelayModel::Spiky {
            lo,
            hi,
            spike_pct,
            factor,
        } => Json::obj([
            ("kind", Json::str("spiky")),
            ("lo", Json::num_u64(lo)),
            ("hi", Json::num_u64(hi)),
            ("spike_pct", Json::num_u64(spike_pct as u64)),
            ("factor", Json::num_u64(factor)),
        ]),
    }
}

fn delay_from_json(doc: &Json) -> Result<DelayModel, String> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("delay: missing kind")?;
    let u64_field = |k: &str| {
        doc.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("delay: missing {k}"))
    };
    Ok(match kind {
        "fixed" => DelayModel::Fixed(u64_field("d")?),
        "uniform" => DelayModel::Uniform {
            lo: u64_field("lo")?,
            hi: u64_field("hi")?,
        },
        "spiky" => DelayModel::Spiky {
            lo: u64_field("lo")?,
            hi: u64_field("hi")?,
            spike_pct: u64_field("spike_pct")? as u8,
            factor: u64_field("factor")?,
        },
        other => return Err(format!("delay: unknown kind {other:?}")),
    })
}

fn delay_rule_to_json(rule: &DelayRule) -> Json {
    Json::obj([
        ("from", pset_to_json(rule.from)),
        ("to", pset_to_json(rule.to)),
        ("active_from", Json::num_u64(rule.active_from.0)),
        ("active_to", Json::num_u64(rule.active_to.0)),
        (
            "deliver_not_before",
            Json::num_u64(rule.deliver_not_before.0),
        ),
    ])
}

fn delay_rule_from_json(doc: &Json) -> Result<DelayRule, String> {
    let u64_field = |k: &str| {
        doc.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("delay rule: missing {k}"))
    };
    Ok(DelayRule {
        from: pset_from_json(doc.get("from").ok_or("delay rule: missing from")?)?,
        to: pset_from_json(doc.get("to").ok_or("delay rule: missing to")?)?,
        active_from: Time(u64_field("active_from")?),
        active_to: Time(u64_field("active_to")?),
        deliver_not_before: Time(u64_field("deliver_not_before")?),
    })
}

fn message_rule_to_json(rule: &MessageRule) -> Json {
    let (action, bound) = match rule.action {
        RuleAction::Drop => ("drop", None),
        RuleAction::Duplicate => ("duplicate", None),
        RuleAction::Corrupt { bound } => ("corrupt", Some(bound)),
    };
    let mut pairs = vec![
        ("action", Json::str(action)),
        ("pct", Json::num_u64(rule.pct as u64)),
        ("from", pset_to_json(rule.from)),
        ("to", pset_to_json(rule.to)),
        ("active_from", Json::num_u64(rule.active_from.0)),
        ("active_to", Json::num_u64(rule.active_to.0)),
    ];
    if let Some(bound) = bound {
        pairs.push(("bound", Json::num_u64(bound)));
    }
    Json::obj(pairs)
}

fn message_rule_from_json(doc: &Json) -> Result<MessageRule, String> {
    let u64_field = |k: &str| {
        doc.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("message rule: missing {k}"))
    };
    let action = match doc.get("action").and_then(Json::as_str) {
        Some("drop") => RuleAction::Drop,
        Some("duplicate") => RuleAction::Duplicate,
        Some("corrupt") => RuleAction::Corrupt {
            bound: u64_field("bound")?,
        },
        other => return Err(format!("message rule: unknown action {other:?}")),
    };
    Ok(MessageRule {
        action,
        pct: u64_field("pct")? as u8,
        from: pset_from_json(doc.get("from").ok_or("message rule: missing from")?)?,
        to: pset_from_json(doc.get("to").ok_or("message rule: missing to")?)?,
        active_from: Time(u64_field("active_from")?),
        active_to: Time(u64_field("active_to")?),
    })
}

fn epoch_to_json(ep: &TopologyEpoch) -> Json {
    Json::obj([
        ("from", Json::num_u64(ep.from.0)),
        ("until", Json::num_u64(ep.until.0)),
        (
            "islands",
            Json::Arr(ep.islands.iter().map(|i| pset_to_json(*i)).collect()),
        ),
        (
            "overrides",
            Json::Arr(
                ep.overrides
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("from", pset_to_json(o.from)),
                            ("to", pset_to_json(o.to)),
                            (
                                "latency",
                                match o.latency {
                                    None => Json::Null,
                                    Some((lo, hi)) => {
                                        Json::Arr(vec![Json::num_u64(lo), Json::num_u64(hi)])
                                    }
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn epoch_from_json(doc: &Json) -> Result<TopologyEpoch, String> {
    let u64_field = |k: &str| {
        doc.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("epoch: missing {k}"))
    };
    let mut ep = TopologyEpoch::new(Time(u64_field("from")?), Time(u64_field("until")?));
    for island in doc
        .get("islands")
        .and_then(Json::as_arr)
        .ok_or("epoch: missing islands")?
    {
        ep.islands.push(pset_from_json(island)?);
    }
    for o in doc
        .get("overrides")
        .and_then(Json::as_arr)
        .ok_or("epoch: missing overrides")?
    {
        let latency = match o.get("latency").ok_or("override: missing latency")? {
            Json::Null => None,
            lat => {
                let pair = lat.as_arr().ok_or("override: latency is not a pair")?;
                match pair {
                    [lo, hi] => Some((
                        lo.as_u64().ok_or("override: bad latency lo")?,
                        hi.as_u64().ok_or("override: bad latency hi")?,
                    )),
                    _ => return Err("override: latency is not a pair".into()),
                }
            }
        };
        ep.overrides.push(LinkOverride {
            from: pset_from_json(o.get("from").ok_or("override: missing from")?)?,
            to: pset_from_json(o.get("to").ok_or("override: missing to")?)?,
            latency,
        });
    }
    Ok(ep)
}

/// Encodes every behavior-relevant field of a spec as canonical JSON.
/// Excluded by design: `seed` (carried at the witness level) and `queue`
/// (both event cores pop in the same order — the knob never changes a
/// trace, and is excluded from the fingerprint for the same reason).
pub fn spec_to_json(spec: &ScenarioSpec) -> Json {
    Json::obj([
        ("n", Json::num_u64(spec.n as u64)),
        ("t", Json::num_u64(spec.t as u64)),
        ("x", Json::num_u64(spec.x as u64)),
        ("y", Json::num_u64(spec.y as u64)),
        ("z", Json::num_u64(spec.z as u64)),
        ("k", Json::num_u64(spec.k as u64)),
        ("oracle", Json::str(oracle_tag(spec.oracle))),
        ("crashes", crashes_to_json(&spec.crashes)),
        ("delay", delay_to_json(&spec.delay)),
        (
            "delay_rules",
            Json::Arr(spec.rules.iter().map(delay_rule_to_json).collect()),
        ),
        ("gst", Json::num_u64(spec.gst.0)),
        ("max_time", Json::num_u64(spec.max_time.0)),
        ("max_steps", Json::num_u64(spec.max_steps)),
        (
            "adversary",
            Json::Arr(
                spec.adversary
                    .rules()
                    .iter()
                    .map(message_rule_to_json)
                    .collect(),
            ),
        ),
        (
            "topology",
            Json::Arr(spec.topology.epochs().iter().map(epoch_to_json).collect()),
        ),
        ("catch_up", Json::Bool(spec.catch_up)),
    ])
}

/// Parses a spec document (inverse of [`spec_to_json`]); the decoded
/// spec fingerprints identically to the encoded one.
pub fn spec_from_json(doc: &Json) -> Result<ScenarioSpec, String> {
    let u64_field = |k: &str| {
        doc.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("spec: missing {k}"))
    };
    let mut spec = ScenarioSpec::new(u64_field("n")? as usize, u64_field("t")? as usize);
    spec.x = u64_field("x")? as usize;
    spec.y = u64_field("y")? as usize;
    spec.z = u64_field("z")? as usize;
    spec.k = u64_field("k")? as usize;
    spec.oracle = oracle_from_tag(
        doc.get("oracle")
            .and_then(Json::as_str)
            .ok_or("spec: missing oracle")?,
    )?;
    spec.crashes = crashes_from_json(doc.get("crashes").ok_or("spec: missing crashes")?)?;
    spec.delay = delay_from_json(doc.get("delay").ok_or("spec: missing delay")?)?;
    spec.rules = doc
        .get("delay_rules")
        .and_then(Json::as_arr)
        .ok_or("spec: missing delay_rules")?
        .iter()
        .map(delay_rule_from_json)
        .collect::<Result<_, _>>()?;
    spec.gst = Time(u64_field("gst")?);
    spec.max_time = Time(u64_field("max_time")?);
    spec.max_steps = u64_field("max_steps")?;
    spec.adversary = MessageAdversary::from_rules(
        doc.get("adversary")
            .and_then(Json::as_arr)
            .ok_or("spec: missing adversary")?
            .iter()
            .map(message_rule_from_json)
            .collect::<Result<_, _>>()?,
    );
    spec.topology = TopologySchedule::from_epochs(
        doc.get("topology")
            .and_then(Json::as_arr)
            .ok_or("spec: missing topology")?
            .iter()
            .map(epoch_from_json)
            .collect::<Result<_, _>>()?,
    );
    spec.catch_up = doc
        .get("catch_up")
        .and_then(Json::as_bool)
        .ok_or("spec: missing catch_up")?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Campaign tallies.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Specs examined (probes + sampled).
    pub specs: u64,
    /// Total checker executions, cache lookups included (top-level sweep
    /// cells plus every shrink candidate and final witness re-run).
    pub runs: u64,
    /// Cells the checker accepted.
    pub passes: u64,
    /// Honest liveness refusals.
    pub refusals: u64,
    /// Safety violations observed (before dedup).
    pub violations: u64,
    /// Checker executions spent inside shrinkers.
    pub shrink_runs: u64,
}

/// A safety violation on a spec that [`expects_safety_violation`] rules
/// out — a genuine bug surfaced by the search, never shrunk away.
#[derive(Clone, Debug)]
pub struct UnexpectedViolation {
    /// One-line description of the offending spec.
    pub description: String,
    /// Fingerprint of the offending spec.
    pub fingerprint: u64,
    /// Run seed that violated.
    pub seed: u64,
    /// The violated predicate.
    pub class: ViolationClass,
    /// The checker's account.
    pub detail: String,
}

impl UnexpectedViolation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("description", Json::str(self.description.clone())),
            ("fingerprint", Json::num_u64(self.fingerprint)),
            ("seed", Json::num_u64(self.seed)),
            ("class", Json::str(self.class.name())),
            ("detail", Json::str(self.detail.clone())),
        ])
    }
}

/// Everything a campaign produced. [`SearchReport::to_json_string`] is
/// canonical: a re-run of the same config emits identical bytes.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// The configuration that drove the campaign.
    pub config: SearchConfig,
    /// Campaign tallies.
    pub stats: SearchStats,
    /// Shrunk, deduplicated witnesses (capped at `config.max_witnesses`).
    pub witnesses: Vec<MinimalWitness>,
    /// Shrink outcomes parallel to `witnesses` (full trails with
    /// intermediate specs, for soundness checks; not serialized).
    pub shrinks: Vec<ShrinkOutcome>,
    /// Safety violations on specs that must not produce any.
    pub unexpected: Vec<UnexpectedViolation>,
}

impl SearchReport {
    /// Canonical JSON document for the campaign.
    pub fn to_json_string(&self) -> String {
        Json::obj([
            ("schema", Json::str(SEARCH_SCHEMA)),
            ("search_seed", Json::num_u64(self.config.search_seed)),
            ("budget", Json::num_u64(self.config.budget)),
            ("seeds_per_spec", Json::num_u64(self.config.seeds_per_spec)),
            (
                "stats",
                Json::obj([
                    ("specs", Json::num_u64(self.stats.specs)),
                    ("runs", Json::num_u64(self.stats.runs)),
                    ("passes", Json::num_u64(self.stats.passes)),
                    ("refusals", Json::num_u64(self.stats.refusals)),
                    ("violations", Json::num_u64(self.stats.violations)),
                    ("shrink_runs", Json::num_u64(self.stats.shrink_runs)),
                ]),
            ),
            (
                "witnesses",
                Json::Arr(self.witnesses.iter().map(|w| w.to_json()).collect()),
            ),
            (
                "unexpected",
                Json::Arr(self.unexpected.iter().map(|u| u.to_json()).collect()),
            ),
        ])
        .emit()
    }
}

/// Runs a campaign: generate → sweep → classify → shrink → emit.
///
/// Specs are examined in generation order and shrinkers run sequentially,
/// so the report depends only on `cfg` — the runner's thread count and
/// cache change wall-clock, never output. Attach a hydrated
/// [`fd_detectors::ReportCache`] (spilling to a [`crate::SweepStore`])
/// and a killed campaign resumes without re-executing a single cell —
/// shrink candidates included.
pub fn run_search(runner: &Runner, cfg: &SearchConfig) -> SearchReport {
    let probes = probe_specs().len() as u64;
    let specs = generate(cfg);
    let mut stats = SearchStats::default();
    let mut witnesses: Vec<MinimalWitness> = Vec::new();
    let mut shrinks: Vec<ShrinkOutcome> = Vec::new();
    let mut unexpected: Vec<UnexpectedViolation> = Vec::new();
    // Dedup twice: per (starting spec, class) before the expensive shrink,
    // and per (minimal fingerprint, class) before emitting.
    let mut seen_start: BTreeSet<(u64, &'static str)> = BTreeSet::new();
    let mut seen_minimal: BTreeSet<(u64, &'static str)> = BTreeSet::new();
    let _ = probes;

    for spec in &specs {
        stats.specs += 1;
        let slims = runner.sweep_fold(
            scenario_for(spec),
            spec,
            0..cfg.seeds_per_spec,
            Vec::new(),
            |acc: &mut Vec<SlimReport>, slim| acc.push(slim),
        );
        stats.runs += slims.len() as u64;
        for slim in slims {
            match classify(&slim.check) {
                RunClass::Pass => stats.passes += 1,
                RunClass::LivenessRefusal => stats.refusals += 1,
                RunClass::Violation => {
                    stats.violations += 1;
                    if !expects_safety_violation(spec) {
                        unexpected.push(UnexpectedViolation {
                            description: describe_spec(spec),
                            fingerprint: spec.fingerprint(),
                            seed: slim.seed,
                            class: slim.check.class,
                            detail: slim.check.detail.clone(),
                        });
                        continue;
                    }
                    if witnesses.len() >= cfg.max_witnesses
                        || !seen_start.insert((spec.fingerprint(), slim.check.class.name()))
                    {
                        continue;
                    }
                    let outcome = shrink(runner, spec, slim.seed, slim.check.class);
                    stats.shrink_runs += outcome.runs;
                    stats.runs += outcome.runs;
                    let fin = run_one(runner, &outcome.spec, slim.seed);
                    stats.runs += 1;
                    if !seen_minimal.insert((outcome.spec.fingerprint(), fin.check.class.name())) {
                        continue;
                    }
                    witnesses.push(MinimalWitness {
                        scenario: scenario_for(&outcome.spec).name().to_string(),
                        description: describe_spec(&outcome.spec),
                        fingerprint: outcome.spec.fingerprint(),
                        seed: slim.seed,
                        class: fin.check.class,
                        detail: fin.check.detail.clone(),
                        events: fin.metrics.events,
                        shrink_steps: outcome
                            .trail
                            .iter()
                            .map(|s| ShrinkStepRecord {
                                pass: s.pass.to_string(),
                                description: s.description.clone(),
                            })
                            .collect(),
                        spec: outcome.spec.clone(),
                    });
                    shrinks.push(outcome);
                }
            }
        }
    }

    SearchReport {
        config: *cfg,
        stats,
        witnesses,
        shrinks,
        unexpected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn kitchen_sink_spec() -> ScenarioSpec {
        let mut island_a = PSet::new();
        island_a.insert(ProcessId(0));
        island_a.insert(ProcessId(1));
        let mut island_b = PSet::new();
        island_b.insert(ProcessId(2));
        ScenarioSpec::new(6, 2)
            .kz(2)
            .x(3)
            .y(2)
            .oracle(OracleChoice::SxPlusPhi(Flavour::Eventual))
            .crashes(CrashPlan::Churn {
                crash_by: Time(900),
                rejoin_after: 77,
            })
            .delay(DelayModel::Spiky {
                lo: 2,
                hi: 9,
                spike_pct: 13,
                factor: 11,
            })
            .rule(DelayRule::silence_until(
                PSet::full(6),
                PSet::full(6),
                Time(250),
            ))
            .gst(Time(400))
            .max_time(Time(5_000))
            .max_steps(9_999)
            .adversary(MessageAdversary::from_rules(vec![
                MessageRule::drop(30).window(Time(10), Time(90)),
                MessageRule::corrupt(15, 4).links(island_a, PSet::full(6)),
            ]))
            .topology(TopologySchedule::from_epochs(vec![TopologyEpoch::new(
                Time(100),
                Time(2_000),
            )
            .islands(vec![island_a, island_b])
            .link(LinkOverride::latency(island_a, island_b, 5, 25))
            .link(LinkOverride::silence(island_b, island_a))]))
            .catch_up(true)
    }

    #[test]
    fn spec_codec_round_trips_every_field() {
        let spec = kitchen_sink_spec();
        let doc = spec_to_json(&spec);
        let back = spec_from_json(&doc).expect("decode kitchen-sink spec");
        assert_eq!(spec.fingerprint(), back.fingerprint());
        // Canonical: re-encoding the decoded spec is byte-identical.
        assert_eq!(doc.emit(), spec_to_json(&back).emit());
        // And survives a parse of the emitted text.
        let reparsed = json::parse(&doc.emit()).expect("parse emitted spec");
        assert_eq!(
            spec_from_json(&reparsed)
                .expect("decode reparsed")
                .fingerprint(),
            spec.fingerprint()
        );
    }

    #[test]
    fn spec_codec_covers_every_oracle_and_infinity() {
        let oracles = [
            OracleChoice::None,
            OracleChoice::Omega,
            OracleChoice::Sx(Flavour::Perpetual),
            OracleChoice::Sx(Flavour::Eventual),
            OracleChoice::Phi(Flavour::Perpetual),
            OracleChoice::Phi(Flavour::Eventual),
            OracleChoice::Psi,
            OracleChoice::SxPlusPhi(Flavour::Perpetual),
            OracleChoice::SxPlusPhi(Flavour::Eventual),
            OracleChoice::Perfect(Flavour::Perpetual),
            OracleChoice::Perfect(Flavour::Eventual),
        ];
        for oracle in oracles {
            let spec = ScenarioSpec::new(4, 1)
                .oracle(oracle)
                .adversary(MessageAdversary::from_rules(vec![MessageRule::drop(10)]));
            let back = spec_from_json(&spec_to_json(&spec)).expect("decode");
            assert_eq!(back.oracle, oracle);
            // The unscoped rule's window end is Time::INFINITY (u64::MAX):
            // must survive the numeric codec exactly.
            assert_eq!(back.adversary.rules()[0].active_to, Time::INFINITY);
        }
    }

    #[test]
    fn classify_follows_the_safety_split() {
        assert_eq!(classify(&CheckOutcome::pass(None, "ok")), RunClass::Pass);
        for class in ViolationClass::ALL {
            if class == ViolationClass::None {
                continue;
            }
            let got = classify(&CheckOutcome::fail_as(class, "x"));
            let want = if class.is_safety() {
                RunClass::Violation
            } else {
                RunClass::LivenessRefusal
            };
            assert_eq!(got, want, "class {class:?}");
        }
    }

    #[test]
    fn generator_is_deterministic_and_always_valid() {
        let cfg = SearchConfig {
            search_seed: 42,
            budget: 64,
            ..SearchConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len() as u64, cfg.budget + probe_specs().len() as u64);
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.fingerprint(), sb.fingerprint());
            // Every sampled spec must materialize without panicking.
            let _ = sa.with_seed(7).materialize();
        }
        // A different search seed moves the sampled region.
        let c = generate(&SearchConfig {
            search_seed: 43,
            budget: 64,
            ..SearchConfig::default()
        });
        assert!(
            a.iter()
                .zip(&c)
                .skip(probe_specs().len())
                .any(|(x, y)| x.fingerprint() != y.fingerprint()),
            "different search seeds must sample different specs"
        );
    }

    #[test]
    fn expectation_predicate_keys_on_live_corruption() {
        let base = ScenarioSpec::new(5, 2);
        assert!(!expects_safety_violation(&base));
        let drops = base
            .clone()
            .adversary(MessageAdversary::from_rules(vec![MessageRule::drop(60)]));
        assert!(!expects_safety_violation(&drops));
        let dead_corrupt =
            base.clone()
                .adversary(MessageAdversary::from_rules(vec![MessageRule::corrupt(
                    0, 7,
                )]));
        assert!(!expects_safety_violation(&dead_corrupt));
        let corrupt = base.adversary(MessageAdversary::from_rules(vec![MessageRule::corrupt(
            40, 7,
        )]));
        assert!(expects_safety_violation(&corrupt));
    }

    #[test]
    fn churn_specs_dispatch_to_the_churn_scenario() {
        let churn = ScenarioSpec::new(6, 2).crashes(CrashPlan::Churn {
            crash_by: Time(500),
            rejoin_after: 100,
        });
        assert_eq!(scenario_for(&churn).name(), "kset_churn");
        assert_eq!(scenario_for(&ScenarioSpec::new(5, 2)).name(), "kset_omega");
    }
}
