//! Prints every experiment table (EXPERIMENTS.md content).
//!
//! Usage: `cargo run -p fd-bench --bin tables --release [-- --quick]
//! [-- --store DIR]`
//!
//! `--store DIR` opens DIR as a durable run directory (see
//! `fd_bench::store`): previously computed sweep cells hydrate the global
//! report cache before the experiments run, and newly computed cells are
//! persisted as they finish — rerunning with the same DIR resumes the
//! swept experiments from disk.

use fd_bench::SweepStore;
use fd_detectors::scenario::ReportCache;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let store = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .map(|dir| {
            let store = SweepStore::open(dir).unwrap_or_else(|e| panic!("open --store {dir}: {e}"));
            let hydrated = fd_bench::experiments::attach_store(&store);
            eprintln!(
                "store: opened {dir} — {} cell(s) on disk, {hydrated} hydrated",
                store.loaded()
            );
            store
        });
    println!(
        "# Experiment tables — Irreducibility and Additivity of Set \
         Agreement-oriented Failure Detector Classes (PODC 2006)"
    );
    println!(
        "\nmode: {} (seeds per configuration: {})",
        if quick { "quick" } else { "full" },
        fd_bench::experiments::seeds(quick)
    );
    for table in fd_bench::all(quick) {
        println!("{table}");
    }
    if let Some(store) = store {
        let cache = ReportCache::global();
        let dir = store.dir().display().to_string();
        let summary = store.close().unwrap_or_else(|e| panic!("store close: {e}"));
        eprintln!(
            "store: closed {dir} — wrote {} new cell(s), {} hits / {} misses this run",
            summary.wrote,
            cache.hits(),
            cache.misses(),
        );
    }
}
