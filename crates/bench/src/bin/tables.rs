//! Prints every experiment table (EXPERIMENTS.md content).
//!
//! Usage: `cargo run -p fd-bench --bin tables --release [-- --quick]`

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "# Experiment tables — Irreducibility and Additivity of Set \
         Agreement-oriented Failure Detector Classes (PODC 2006)"
    );
    println!(
        "\nmode: {} (seeds per configuration: {})",
        if quick { "quick" } else { "full" },
        fd_bench::experiments::seeds(quick)
    );
    for table in fd_bench::all(quick) {
        println!("{table}");
    }
}
