//! Emits `BENCH_sweep.json`: throughput of a representative grid sweep
//! (runs/sec, events/sec) through the work-stealing scenario runner, plus
//! a large single-cell streaming sweep that holds only `O(threads)` full
//! reports in memory.
//!
//! Usage: `cargo run -p fd-bench --bin sweep --release [-- --seeds N]
//! [-- --threads N] [-- --stream N] [-- --out PATH]`
//!
//! `--threads 0` (the default) uses all available cores; `--stream 0`
//! skips the streaming demonstration.

use fd_detectors::scenario::Runner;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let seeds: u64 = arg_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let threads: usize = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let stream_seeds: u64 = arg_value("--stream")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let runner = if threads == 0 {
        Runner::parallel()
    } else {
        Runner::with_threads(threads)
    };
    let mut report = fd_bench::representative_sweep(seeds, runner);
    println!(
        "grid sweep: {} runs ({} passed) on {} threads in {} us — {:.1} runs/s, {:.0} events/s",
        report.total_runs,
        report.total_passes,
        report.threads,
        report.wall_us,
        report.runs_per_sec,
        report.events_per_sec,
    );
    if stream_seeds > 0 {
        let stream = fd_bench::streaming_sweep(stream_seeds, runner);
        println!(
            "streaming sweep: {} runs ({} passed) in {} us — {:.1} runs/s, O(threads) reports held",
            stream.runs, stream.passes, stream.wall_us, stream.runs_per_sec,
        );
        assert_eq!(
            stream.passes, stream.runs,
            "streaming sweep had failing runs"
        );
        report = report.with_stream(stream);
    }
    let json = report.to_json();
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    println!("wrote {out}");
    assert_eq!(
        report.total_passes, report.total_runs,
        "grid sweep had failing cells"
    );
}
