//! Emits `BENCH_sweep.json`: throughput of a representative grid sweep
//! (runs/sec, events/sec) through the work-stealing scenario runner, a
//! large single-cell streaming sweep that holds only `O(threads)` full
//! reports in memory, and a queue cross-check that drives the grid on both
//! event-core implementations and asserts their trace fingerprints match.
//!
//! Usage: `cargo run -p fd-bench --bin sweep --release [-- --seeds N]
//! [-- --threads N] [-- --stream N] [-- --queue auto|calendar|binary_heap]
//! [-- --compare N] [-- --large N] [-- --auto-queue N] [-- --cache N]
//! [-- --store-leg N] [-- --store DIR] [-- --resume] [-- --adv N]
//! [-- --adv-drop P] [-- --adv-dup P] [-- --topo N] [-- --curve LIST]
//! [-- --n-max N] [-- --baseline PATH] [-- --out PATH] [-- --profile]`
//!
//! Or, to aggregate previously written run directories:
//! `cargo run -p fd-bench --bin sweep --release -- analyze DIR [DIR ...]`
//!
//! Or, to run the adversary search campaign (sample the fault space,
//! classify outcomes, shrink checker violations to minimal witnesses):
//! `cargo run -p fd-bench --bin sweep --release -- search [--budget N]
//! [--search-seed S] [--seeds-per-spec N] [--max-witnesses N]
//! [--threads N] [--store DIR] [--resume] [--out PATH]`
//!
//! The search campaign is deterministic in `--search-seed`: reruns —
//! at any `--threads` — emit a byte-identical witness report. It exits
//! non-zero if any spec *without* a corruption rule breaks a safety
//! property (drops, duplicates, delays, partitions, and in-bound crashes
//! must only ever cost liveness), or if the seeded-in probe violation is
//! not found and shrunk. With `--store DIR` every computed cell — shrink
//! candidates included — persists to the run directory, and a rerun
//! resumes from it; `--resume` asserts the resumed campaign recomputed
//! nothing.
//!
//! `--profile` prints a per-phase event-count breakdown after the run:
//! every grid cell's simulated events, plus the streaming and adversary
//! phases — where the work actually goes, for sizing optimization targets.
//! With `--store`, it also prints the hydrated cache's occupancy and
//! capped-insert tallies (how effective store hydration was).
//!
//! `--store DIR` makes the main grid + streaming legs durable: DIR is
//! opened (or created) as a run directory, its cells hydrate the report
//! cache before the sweep, and every newly computed cell is persisted
//! crash-safely as it finishes. A rerun against the same DIR resumes with
//! pure cache hits and a bit-identical `grid_digest`. `--resume` asserts
//! exactly that (0 misses, >0 hydrated cells) — CI's kill-and-resume gate.
//! `--store-leg N` (default 1 seed per cell; 0 skips) proves the
//! round-trip in-process against a scratch directory: cold sweep → close →
//! reopen → hydrate a fresh cache → warm sweep must be bit-identical, all
//! hits, zero misses.
//!
//! `--threads 0` (the default) uses all available cores; `--stream 0`
//! skips the streaming demonstration; `--compare 0` skips the queue
//! cross-check (default: 4 seeds per cell on both impls, fingerprint
//! mismatch aborts). `--large N` runs the large-`n` (17/33/64/128) smoke
//! leg on both event cores (default 1 seed per cell; 0 skips; fingerprint
//! mismatch aborts). `--auto-queue N` runs the same large-`n` grid on
//! `QueueKind::Auto` *and* both concrete queues (default 1 seed per cell;
//! 0 skips): a fingerprint mismatch aborts, and `auto` landing more than
//! 30% below the better concrete queue fails the run. `--cache N` runs
//! the report-cache leg (default 1 seed per cell; 0 skips): a cold grid
//! sweep through a fresh cache, then an overlapping warm sweep that must
//! be bit-identical with >0 hits, or the run aborts. `--adv N` runs the
//! adversary sweep leg at `--adv-drop`/`--adv-dup` percent (default 2
//! seeds per cell; 0 skips) — its determinism, `None`-differential, and
//! churn catch-up gates abort on failure; its grid pass-rate is recorded,
//! not gated (uniform drops are outside the algorithm's liveness tolerance
//! by design). `--topo N` runs the topology leg (default 2 seeds per heal
//! cell; 0 skips): a partition's heal time swept against the termination
//! horizon into a liveness phase diagram — its determinism,
//! `TopologySchedule::None`-differential, partition-during-join churn and
//! liveness-flip gates abort on failure; pass-rate per heal cell is
//! recorded, not gated (past-horizon heals *must* fail).
//! `--curve LIST` runs the `n`-scaling leg at the
//! comma-separated process counts in `LIST` (default `256,512,1024`; pass
//! `--curve 0` to skip), one seed per size, recording the events/s-vs-`n`
//! curve and the chosen `n` list in the JSON; `--n-max N` drops every
//! curve point above `N` (how CI trims the leg to an `n = 256` smoke).
//! `--baseline PATH` compares per-thread `runs_per_sec` against a
//! committed report and exits non-zero on a >30% regression.

use fd_bench::{BaselineVerdict, InvocationRecord, SweepStore};
use fd_detectors::scenario::{QueueKind, ReportCache, Runner};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `sweep analyze DIR [DIR ...]` — aggregate run directories into tables.
fn run_analyze(dirs: &[String]) {
    if dirs.is_empty() {
        eprintln!("usage: sweep analyze DIR [DIR ...]");
        std::process::exit(2);
    }
    let report = fd_bench::analyze_run_dirs(dirs)
        .unwrap_or_else(|e| panic!("analyze: failed to load run dirs: {e}"));
    print!("{}", report.render());
}

/// `sweep search ...` — the adversary search campaign: sample the fault
/// space across message rules, crash plans, delays, and topology; classify
/// every cell as pass / honest liveness refusal / checker violation; and
/// shrink each expected violation to a minimal witness.
fn run_search_cmd() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = fd_bench::SearchConfig {
        search_seed: arg_value("--search-seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        budget: arg_value("--budget")
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
        seeds_per_spec: arg_value("--seeds-per-spec")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        max_witnesses: arg_value("--max-witnesses")
            .and_then(|v| v.parse().ok())
            .unwrap_or(3),
    };
    let threads: usize = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let resume = args.iter().any(|a| a == "--resume");
    let out = arg_value("--out").unwrap_or_else(|| "SEARCH_witnesses.json".into());
    let runner = if threads == 0 {
        Runner::parallel()
    } else {
        Runner::with_threads(threads)
    };
    // Always cache-backed: the shrinker's fixed-point loop re-visits
    // candidates, and the cache turns repeats into lookups. With --store
    // the cache additionally hydrates from / spills to the run directory,
    // making a killed campaign resumable without recomputing any cell.
    let cache: &'static ReportCache = Box::leak(Box::new(ReportCache::new()));
    let store = arg_value("--store").map(|dir| {
        let store = SweepStore::open(&dir).unwrap_or_else(|e| panic!("open --store {dir}: {e}"));
        for (i, spec) in fd_bench::generate(&cfg).iter().enumerate() {
            let scenario = fd_bench::scenario_for(spec);
            store.register_spec(
                &format!("search[{i}] {}", fd_bench::describe_spec(spec)),
                &scenario.cache_tag(),
                spec,
            );
        }
        let hydrated = store.hydrate_into(cache);
        cache.set_spill(Some(store.spill()));
        // Commit the manifest before computing anything: a killed campaign
        // then leaves a trusted, resumable run directory behind.
        store
            .commit_manifest()
            .unwrap_or_else(|e| panic!("store commit manifest: {e}"));
        println!(
            "store: opened {dir} — {} cell(s) on disk, {hydrated} hydrated",
            store.loaded(),
        );
        store
    });
    let runner = runner.with_cache(cache);
    let t0 = std::time::Instant::now();
    let report = fd_bench::run_search(&runner, &cfg);
    let wall_us = t0.elapsed().as_micros() as u64;
    let s = &report.stats;
    println!(
        "search (seed {}): {} specs, {} runs in {} us — {} passes, {} refusals, \
         {} violations ({} shrink runs)",
        cfg.search_seed,
        s.specs,
        s.runs,
        wall_us,
        s.passes,
        s.refusals,
        s.violations,
        s.shrink_runs,
    );
    for w in &report.witnesses {
        println!(
            "witness [{}] seed {} ({} shrink steps, {} events to violation): {}",
            w.class.name(),
            w.seed,
            w.shrink_steps.len(),
            w.events,
            w.description,
        );
    }
    for u in &report.unexpected {
        eprintln!(
            "UNEXPECTED [{}] violation at seed {}: {} — {}",
            u.class.name(),
            u.seed,
            u.description,
            u.detail,
        );
    }
    if let Some(store) = store {
        let wrote = store.flush().unwrap_or_else(|e| panic!("store flush: {e}"));
        store.record_invocation(InvocationRecord {
            runs: s.runs,
            hits: cache.hits(),
            misses: cache.misses(),
            wrote,
            wall_us,
        });
        let dir = store.dir().display().to_string();
        store.close().unwrap_or_else(|e| panic!("store close: {e}"));
        println!(
            "store: closed {dir} — wrote {wrote} new cell(s), {} hits / {} misses this run",
            cache.hits(),
            cache.misses(),
        );
        if resume {
            assert!(
                cache.hydrated() > 0,
                "--resume: the store hydrated nothing (empty or mismatched run dir)"
            );
            assert_eq!(
                cache.misses(),
                0,
                "--resume: cells (shrink candidates included) were recomputed \
                 instead of served from the store"
            );
            assert_eq!(cache.hits(), s.runs, "--resume: not every run was a hit");
            println!(
                "store: resume verified — all {} runs served from the run directory",
                s.runs,
            );
        }
    }
    std::fs::write(&out, report.to_json_string()).expect("write witness report");
    println!("wrote {out}");
    assert!(
        report.unexpected.is_empty(),
        "search surfaced {} unexpected safety violation(s): a drop/duplicate/delay/\
         topology/crash adversary broke a safety property",
        report.unexpected.len(),
    );
    assert!(
        report
            .witnesses
            .iter()
            .any(|w| w.class == fd_detectors::ViolationClass::Validity),
        "the seeded-in probe violation was not found and shrunk"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("analyze") {
        run_analyze(&args[2..]);
        return;
    }
    if args.get(1).map(String::as_str) == Some("search") {
        run_search_cmd();
        return;
    }
    let seeds: u64 = arg_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let threads: usize = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let stream_seeds: u64 = arg_value("--stream")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let compare_seeds: u64 = arg_value("--compare")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let large_seeds: u64 = arg_value("--large")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let auto_seeds: u64 = arg_value("--auto-queue")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let cache_seeds: u64 = arg_value("--cache")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let store_leg_seeds: u64 = arg_value("--store-leg")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let resume = args.iter().any(|a| a == "--resume");
    let adv_seeds: u64 = arg_value("--adv").and_then(|v| v.parse().ok()).unwrap_or(2);
    let topo_seeds: u64 = arg_value("--topo")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let adv_drop: u8 = arg_value("--adv-drop")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let adv_dup: u8 = arg_value("--adv-dup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let queue = match arg_value("--queue").as_deref() {
        None | Some("auto") => QueueKind::Auto,
        Some("calendar") => QueueKind::Calendar,
        Some("binary_heap") => QueueKind::BinaryHeap,
        Some(other) => panic!("unknown --queue {other} (auto | calendar | binary_heap)"),
    };
    // The n-scaling leg: `--curve 256,512,1024` (the default), `--curve 0`
    // to skip, `--n-max 256` to trim the list (the CI smoke shape).
    let curve_ns: Vec<usize> = {
        let raw = arg_value("--curve").unwrap_or_else(|| "256,512,1024".into());
        if raw.trim() == "0" {
            Vec::new()
        } else {
            raw.split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .unwrap_or_else(|e| panic!("bad --curve entry {p:?}: {e}"))
                })
                .collect()
        }
    };
    let n_max: usize = arg_value("--n-max")
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let curve_ns: Vec<usize> = curve_ns.into_iter().filter(|&n| n <= n_max).collect();
    let baseline = arg_value("--baseline");
    let profile = std::env::args().any(|a| a == "--profile");
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let runner = if threads == 0 {
        Runner::parallel()
    } else {
        Runner::with_threads(threads)
    };
    // --store DIR: open the run directory, hydrate the report cache from
    // it, and persist every newly computed grid/stream cell as it lands.
    let store_ctx: Option<(SweepStore, &'static ReportCache)> = arg_value("--store").map(|dir| {
        let store = SweepStore::open(&dir).unwrap_or_else(|e| panic!("open --store {dir}: {e}"));
        let tag = {
            use fd_detectors::scenario::Scenario as _;
            fd_core::KsetScenario.cache_tag()
        };
        for (label, spec, _) in fd_bench::grid_cells(seeds, queue) {
            store.register_spec(&label, &tag, &spec);
        }
        if stream_seeds > 0 {
            let (slabel, sspec) = fd_bench::stream_cell(queue);
            store.register_spec(&format!("stream_{slabel}"), &tag, &sspec);
        }
        // Leaked: `Runner::with_cache` wants `'static`, and the bin runs
        // one campaign per process.
        let cache: &'static ReportCache = Box::leak(Box::new(ReportCache::new()));
        let hydrated = store.hydrate_into(cache);
        cache.set_spill(Some(store.spill()));
        // Commit the manifest before computing anything: a killed sweep
        // then leaves a trusted, resumable run directory behind.
        store
            .commit_manifest()
            .unwrap_or_else(|e| panic!("store commit manifest: {e}"));
        println!(
            "store: opened {dir} — {} cell(s) on disk, {hydrated} hydrated, {} corrupt line(s){}",
            store.loaded(),
            store.corrupt(),
            if store.archived_stale() {
                ", stale shards archived"
            } else {
                ""
            },
        );
        (store, cache)
    });
    let grid_runner = match &store_ctx {
        Some((_, cache)) => runner.with_cache(cache),
        None => runner,
    };
    let mut report = fd_bench::representative_sweep_on(seeds, grid_runner, queue);
    println!(
        "grid sweep ({}): {} runs ({} passed) on {} threads in {} us — {:.1} runs/s, {:.0} events/s",
        report.queue,
        report.total_runs,
        report.total_passes,
        report.threads,
        report.wall_us,
        report.runs_per_sec,
        report.events_per_sec,
    );
    if stream_seeds > 0 {
        let stream = fd_bench::streaming_sweep_on(stream_seeds, grid_runner, queue);
        println!(
            "streaming sweep: {} runs ({} passed) in {} us — {:.1} runs/s, O(threads) reports held",
            stream.runs, stream.passes, stream.wall_us, stream.runs_per_sec,
        );
        assert_eq!(
            stream.passes, stream.runs,
            "streaming sweep had failing runs"
        );
        report = report.with_stream(stream);
    }
    // Finalize the run directory: record this invocation, flush, close.
    // The cache stays alive (it is 'static) for the --profile stats below.
    let store_cache: Option<&'static ReportCache> = store_ctx.map(|(store, cache)| {
        let wrote = store.flush().unwrap_or_else(|e| panic!("store flush: {e}"));
        let runs = report.total_runs + report.stream.as_ref().map_or(0, |s| s.runs);
        let wall_us = report.wall_us + report.stream.as_ref().map_or(0, |s| s.wall_us);
        store.record_invocation(InvocationRecord {
            runs,
            hits: cache.hits(),
            misses: cache.misses(),
            wrote,
            wall_us,
        });
        let dir = store.dir().display().to_string();
        store.close().unwrap_or_else(|e| panic!("store close: {e}"));
        println!(
            "store: closed {dir} — wrote {wrote} new cell(s), {} hits / {} misses this run",
            cache.hits(),
            cache.misses(),
        );
        if resume {
            assert!(
                cache.hydrated() > 0,
                "--resume: the store hydrated nothing (empty or mismatched run dir)"
            );
            assert_eq!(
                cache.misses(),
                0,
                "--resume: cells were recomputed instead of served from the store"
            );
            assert_eq!(cache.hits(), runs, "--resume: not every run was a hit");
            println!("store: resume verified — all {runs} runs served from the run directory");
        }
        cache
    });
    if compare_seeds > 0 {
        let cmp = fd_bench::queue_comparison(compare_seeds, runner);
        for r in &cmp.rates {
            println!(
                "queue cross-check ({}): {} runs — {:.1} runs/s, {:.0} events/s",
                r.queue, cmp.runs, r.runs_per_sec, r.events_per_sec,
            );
        }
        assert!(
            cmp.fingerprints_equal,
            "queue implementations produced different trace fingerprints"
        );
        report = report.with_compare(cmp);
    }
    if large_seeds > 0 {
        let lg = fd_bench::large_n_comparison(large_seeds, runner);
        for r in &lg.rates {
            println!(
                "large-n cross-check ({}): {} runs — {:.1} runs/s, {:.0} events/s",
                r.queue, lg.runs, r.runs_per_sec, r.events_per_sec,
            );
        }
        assert!(
            lg.fingerprints_equal,
            "queue implementations diverged on the large-n grid"
        );
        report = report.with_large_n(lg);
    }
    if auto_seeds > 0 {
        let auto = fd_bench::auto_queue_comparison(auto_seeds, runner);
        for r in &auto.rates {
            println!(
                "auto-queue leg ({}): {} runs — {:.1} runs/s, {:.0} events/s",
                r.queue, auto.runs, r.runs_per_sec, r.events_per_sec,
            );
        }
        assert!(
            auto.fingerprints_equal,
            "QueueKind::Auto diverged from the concrete queues on the large-n grid"
        );
        let rate_of = |name: &str| {
            auto.rates
                .iter()
                .find(|r| r.queue == name)
                .map(|r| r.runs_per_sec)
                .unwrap_or(0.0)
        };
        let auto_rate = rate_of("auto");
        let best = rate_of("calendar").max(rate_of("binary_heap"));
        assert!(
            auto_rate >= best * 0.70,
            "QueueKind::Auto ({auto_rate:.1} runs/s) is more than 30% slower than the better \
             concrete queue ({best:.1} runs/s) on the large-n grid"
        );
        report = report.with_auto_queue(auto);
    }
    if cache_seeds > 0 {
        let leg = fd_bench::cache_leg(cache_seeds, runner);
        println!(
            "cache leg: {} cold runs ({} us), {} warm runs ({} us) — {} hits, {} misses, identical: {}",
            leg.cold_runs,
            leg.cold_wall_us,
            leg.warm_runs,
            leg.warm_wall_us,
            leg.hits,
            leg.misses,
            leg.identical,
        );
        assert!(
            leg.identical,
            "cache-served sweep diverged from the cold sweep"
        );
        assert!(
            leg.hits > 0,
            "overlapping warm sweep produced no cache hits"
        );
        report = report.with_cache_leg(leg);
    }
    if store_leg_seeds > 0 {
        let scratch =
            std::env::temp_dir().join(format!("fd-sweep-store-leg-{}", std::process::id()));
        std::fs::remove_dir_all(&scratch).ok();
        let leg = fd_bench::store_leg(store_leg_seeds, runner, &scratch)
            .unwrap_or_else(|e| panic!("store leg: {e}"));
        std::fs::remove_dir_all(&scratch).ok();
        println!(
            "store leg: {} cold runs ({} us, {} cells written); resume: {} us open+hydrate, \
             {} us sweep — {} hits, {} misses, identical: {}, speedup {:.0}x",
            leg.cold_runs,
            leg.cold_wall_us,
            leg.wrote,
            leg.open_wall_us,
            leg.warm_wall_us,
            leg.warm_hits,
            leg.warm_misses,
            leg.identical,
            leg.speedup,
        );
        assert!(
            leg.identical,
            "store-resumed sweep diverged from the cold sweep"
        );
        assert_eq!(
            leg.wrote, leg.cold_runs,
            "cold sweep cells not all persisted"
        );
        assert_eq!(
            leg.warm_hits, leg.warm_runs,
            "store resume was not all cache hits"
        );
        assert_eq!(leg.warm_misses, 0, "store resume recomputed cells");
        report = report.with_store_leg(leg);
    }
    if adv_seeds > 0 {
        let leg = fd_bench::adversary_leg(adv_seeds, runner, adv_drop, adv_dup);
        println!(
            "adversary leg ({}): {}/{} runs passed, {} dropped, {} duplicated — {:.1} runs/s",
            leg.adversary, leg.passes, leg.runs, leg.dropped, leg.duplicated, leg.runs_per_sec,
        );
        assert!(
            leg.deterministic,
            "adversary grid did not rerun bit-identically"
        );
        assert!(
            leg.none_identical,
            "explicit MessageAdversary::None diverged from the default spec"
        );
        assert!(
            leg.churn_catchup_live,
            "churn + catch-up failed the liveness envelope under the adversary"
        );
        assert!(
            leg.churn_safety_only,
            "churn without catch-up no longer scores safety-only"
        );
        report = report.with_adversary_leg(leg);
    }
    if topo_seeds > 0 {
        let leg = fd_bench::topology_leg(topo_seeds, runner);
        println!(
            "topology leg ({}): {}/{} runs passed, {} severed — heal grid [{}], \
             negative witness seeds {:?}",
            leg.schedule,
            leg.passes,
            leg.runs,
            leg.severed,
            leg.cells
                .iter()
                .map(|c| format!("{}:{}/{}", c.heal, c.passes, c.runs))
                .collect::<Vec<_>>()
                .join(", "),
            leg.negative_witness_seeds,
        );
        assert!(
            leg.deterministic,
            "partitioned grid did not rerun bit-identically"
        );
        assert!(
            leg.none_identical,
            "explicit TopologySchedule::None diverged from the default spec"
        );
        assert!(
            leg.churn_partition_live,
            "churn + catch-up failed liveness under a partition-during-join"
        );
        assert!(
            leg.liveness_flip,
            "heal-time phase diagram did not flip: earliest heal must pass, \
             past-horizon heal must fail"
        );
        report = report.with_topology_leg(leg);
    }
    if !curve_ns.is_empty() {
        let sc = fd_bench::scaling_curve(&curve_ns, 1, runner);
        for p in &sc.points {
            println!(
                "scaling curve (n={}): {} events in {} us — {:.0} events/s",
                p.n, p.events, p.wall_us, p.events_per_sec,
            );
            assert_eq!(
                p.passes, p.runs,
                "scaling point n={} failed its spec check",
                p.n
            );
        }
        report = report.with_scaling(sc);
    }
    if profile {
        println!("event profile (per phase):");
        for c in &report.cells {
            println!(
                "  grid      {:<28} {:>12} events  ({} runs)",
                c.label, c.events, c.runs
            );
        }
        println!(
            "  grid      {:<28} {:>12} events  ({} runs)",
            "TOTAL", report.total_events, report.total_runs
        );
        if let Some(s) = &report.stream {
            println!(
                "  stream    {:<28} {:>12} events  ({} runs)",
                s.cell, s.events, s.runs
            );
        }
        if let Some(a) = &report.adversary_leg {
            for c in &a.cells {
                println!(
                    "  adversary {:<28} {:>12} events  ({} runs)",
                    c.label, c.events, c.runs
                );
            }
            println!(
                "  adversary {:<28} {:>12} events  ({} runs)",
                "TOTAL", a.events, a.runs
            );
        }
        if let Some(t) = &report.topology_leg {
            for c in &t.cells {
                println!(
                    "  topology  heal={:<23} {:>12} events  ({} runs)",
                    c.heal, c.events, c.runs
                );
            }
            println!(
                "  topology  {:<28} {:>12} events  ({} runs)",
                "TOTAL", t.events, t.runs
            );
        }
        if let Some(cache) = store_cache {
            // Occupancy and "eviction" (capped-insert) stats: how full the
            // in-memory cache is and whether store hydration was capped.
            println!(
                "  cache     {:<28} {:>12} entries ({} hits, {} misses, {} hydrated, {} capped)",
                "report-cache",
                cache.len(),
                cache.hits(),
                cache.misses(),
                cache.hydrated(),
                cache.capped_inserts(),
            );
        }
    }
    let json = report.to_json();
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    println!("wrote {out}");
    assert_eq!(
        report.total_passes, report.total_runs,
        "grid sweep had failing cells"
    );
    if let Some(path) = baseline {
        let base =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        match fd_bench::check_baseline(&report, &base, 30) {
            BaselineVerdict::Ok(msg) => println!("baseline check ok: {msg}"),
            BaselineVerdict::Regressed(msg) => {
                eprintln!("baseline check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
