//! Emits `BENCH_sweep.json`: throughput of a representative grid sweep
//! (runs/sec, events/sec) through the parallel scenario runner.
//!
//! Usage: `cargo run -p fd-bench --bin sweep --release [-- --seeds N] [-- --out PATH]`

use fd_detectors::scenario::Runner;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let seeds: u64 = arg_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let report = fd_bench::representative_sweep(seeds, Runner::parallel());
    println!(
        "grid sweep: {} runs ({} passed) on {} threads in {} ms — {:.1} runs/s, {:.0} events/s",
        report.total_runs,
        report.total_passes,
        report.threads,
        report.wall_ms,
        report.runs_per_sec,
        report.events_per_sec,
    );
    let json = report.to_json();
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    println!("wrote {out}");
    assert_eq!(
        report.total_passes, report.total_runs,
        "grid sweep had failing cells"
    );
}
