//! Emits `BENCH_sweep.json`: throughput of a representative grid sweep
//! (runs/sec, events/sec) through the work-stealing scenario runner, a
//! large single-cell streaming sweep that holds only `O(threads)` full
//! reports in memory, and a queue cross-check that drives the grid on both
//! event-core implementations and asserts their trace fingerprints match.
//!
//! Usage: `cargo run -p fd-bench --bin sweep --release [-- --seeds N]
//! [-- --threads N] [-- --stream N] [-- --queue auto|calendar|binary_heap]
//! [-- --compare N] [-- --large N] [-- --auto-queue N] [-- --cache N]
//! [-- --adv N] [-- --adv-drop P] [-- --adv-dup P] [-- --curve LIST]
//! [-- --n-max N] [-- --baseline PATH] [-- --out PATH] [-- --profile]`
//!
//! `--profile` prints a per-phase event-count breakdown after the run:
//! every grid cell's simulated events, plus the streaming and adversary
//! phases — where the work actually goes, for sizing optimization targets.
//!
//! `--threads 0` (the default) uses all available cores; `--stream 0`
//! skips the streaming demonstration; `--compare 0` skips the queue
//! cross-check (default: 4 seeds per cell on both impls, fingerprint
//! mismatch aborts). `--large N` runs the large-`n` (17/33/64/128) smoke
//! leg on both event cores (default 1 seed per cell; 0 skips; fingerprint
//! mismatch aborts). `--auto-queue N` runs the same large-`n` grid on
//! `QueueKind::Auto` *and* both concrete queues (default 1 seed per cell;
//! 0 skips): a fingerprint mismatch aborts, and `auto` landing more than
//! 30% below the better concrete queue fails the run. `--cache N` runs
//! the report-cache leg (default 1 seed per cell; 0 skips): a cold grid
//! sweep through a fresh cache, then an overlapping warm sweep that must
//! be bit-identical with >0 hits, or the run aborts. `--adv N` runs the
//! adversary sweep leg at `--adv-drop`/`--adv-dup` percent (default 2
//! seeds per cell; 0 skips) — its determinism, `None`-differential, and
//! churn catch-up gates abort on failure; its grid pass-rate is recorded,
//! not gated (uniform drops are outside the algorithm's liveness tolerance
//! by design). `--curve LIST` runs the `n`-scaling leg at the
//! comma-separated process counts in `LIST` (default `256,512,1024`; pass
//! `--curve 0` to skip), one seed per size, recording the events/s-vs-`n`
//! curve and the chosen `n` list in the JSON; `--n-max N` drops every
//! curve point above `N` (how CI trims the leg to an `n = 256` smoke).
//! `--baseline PATH` compares per-thread `runs_per_sec` against a
//! committed report and exits non-zero on a >30% regression.

use fd_bench::BaselineVerdict;
use fd_detectors::scenario::{QueueKind, Runner};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let seeds: u64 = arg_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let threads: usize = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let stream_seeds: u64 = arg_value("--stream")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let compare_seeds: u64 = arg_value("--compare")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let large_seeds: u64 = arg_value("--large")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let auto_seeds: u64 = arg_value("--auto-queue")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let cache_seeds: u64 = arg_value("--cache")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let adv_seeds: u64 = arg_value("--adv").and_then(|v| v.parse().ok()).unwrap_or(2);
    let adv_drop: u8 = arg_value("--adv-drop")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let adv_dup: u8 = arg_value("--adv-dup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let queue = match arg_value("--queue").as_deref() {
        None | Some("auto") => QueueKind::Auto,
        Some("calendar") => QueueKind::Calendar,
        Some("binary_heap") => QueueKind::BinaryHeap,
        Some(other) => panic!("unknown --queue {other} (auto | calendar | binary_heap)"),
    };
    // The n-scaling leg: `--curve 256,512,1024` (the default), `--curve 0`
    // to skip, `--n-max 256` to trim the list (the CI smoke shape).
    let curve_ns: Vec<usize> = {
        let raw = arg_value("--curve").unwrap_or_else(|| "256,512,1024".into());
        if raw.trim() == "0" {
            Vec::new()
        } else {
            raw.split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .unwrap_or_else(|e| panic!("bad --curve entry {p:?}: {e}"))
                })
                .collect()
        }
    };
    let n_max: usize = arg_value("--n-max")
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let curve_ns: Vec<usize> = curve_ns.into_iter().filter(|&n| n <= n_max).collect();
    let baseline = arg_value("--baseline");
    let profile = std::env::args().any(|a| a == "--profile");
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let runner = if threads == 0 {
        Runner::parallel()
    } else {
        Runner::with_threads(threads)
    };
    let mut report = fd_bench::representative_sweep_on(seeds, runner, queue);
    println!(
        "grid sweep ({}): {} runs ({} passed) on {} threads in {} us — {:.1} runs/s, {:.0} events/s",
        report.queue,
        report.total_runs,
        report.total_passes,
        report.threads,
        report.wall_us,
        report.runs_per_sec,
        report.events_per_sec,
    );
    if stream_seeds > 0 {
        let stream = fd_bench::streaming_sweep_on(stream_seeds, runner, queue);
        println!(
            "streaming sweep: {} runs ({} passed) in {} us — {:.1} runs/s, O(threads) reports held",
            stream.runs, stream.passes, stream.wall_us, stream.runs_per_sec,
        );
        assert_eq!(
            stream.passes, stream.runs,
            "streaming sweep had failing runs"
        );
        report = report.with_stream(stream);
    }
    if compare_seeds > 0 {
        let cmp = fd_bench::queue_comparison(compare_seeds, runner);
        for r in &cmp.rates {
            println!(
                "queue cross-check ({}): {} runs — {:.1} runs/s, {:.0} events/s",
                r.queue, cmp.runs, r.runs_per_sec, r.events_per_sec,
            );
        }
        assert!(
            cmp.fingerprints_equal,
            "queue implementations produced different trace fingerprints"
        );
        report = report.with_compare(cmp);
    }
    if large_seeds > 0 {
        let lg = fd_bench::large_n_comparison(large_seeds, runner);
        for r in &lg.rates {
            println!(
                "large-n cross-check ({}): {} runs — {:.1} runs/s, {:.0} events/s",
                r.queue, lg.runs, r.runs_per_sec, r.events_per_sec,
            );
        }
        assert!(
            lg.fingerprints_equal,
            "queue implementations diverged on the large-n grid"
        );
        report = report.with_large_n(lg);
    }
    if auto_seeds > 0 {
        let auto = fd_bench::auto_queue_comparison(auto_seeds, runner);
        for r in &auto.rates {
            println!(
                "auto-queue leg ({}): {} runs — {:.1} runs/s, {:.0} events/s",
                r.queue, auto.runs, r.runs_per_sec, r.events_per_sec,
            );
        }
        assert!(
            auto.fingerprints_equal,
            "QueueKind::Auto diverged from the concrete queues on the large-n grid"
        );
        let rate_of = |name: &str| {
            auto.rates
                .iter()
                .find(|r| r.queue == name)
                .map(|r| r.runs_per_sec)
                .unwrap_or(0.0)
        };
        let auto_rate = rate_of("auto");
        let best = rate_of("calendar").max(rate_of("binary_heap"));
        assert!(
            auto_rate >= best * 0.70,
            "QueueKind::Auto ({auto_rate:.1} runs/s) is more than 30% slower than the better \
             concrete queue ({best:.1} runs/s) on the large-n grid"
        );
        report = report.with_auto_queue(auto);
    }
    if cache_seeds > 0 {
        let leg = fd_bench::cache_leg(cache_seeds, runner);
        println!(
            "cache leg: {} cold runs ({} us), {} warm runs ({} us) — {} hits, {} misses, identical: {}",
            leg.cold_runs,
            leg.cold_wall_us,
            leg.warm_runs,
            leg.warm_wall_us,
            leg.hits,
            leg.misses,
            leg.identical,
        );
        assert!(
            leg.identical,
            "cache-served sweep diverged from the cold sweep"
        );
        assert!(
            leg.hits > 0,
            "overlapping warm sweep produced no cache hits"
        );
        report = report.with_cache_leg(leg);
    }
    if adv_seeds > 0 {
        let leg = fd_bench::adversary_leg(adv_seeds, runner, adv_drop, adv_dup);
        println!(
            "adversary leg ({}): {}/{} runs passed, {} dropped, {} duplicated — {:.1} runs/s",
            leg.adversary, leg.passes, leg.runs, leg.dropped, leg.duplicated, leg.runs_per_sec,
        );
        assert!(
            leg.deterministic,
            "adversary grid did not rerun bit-identically"
        );
        assert!(
            leg.none_identical,
            "explicit MessageAdversary::None diverged from the default spec"
        );
        assert!(
            leg.churn_catchup_live,
            "churn + catch-up failed the liveness envelope under the adversary"
        );
        assert!(
            leg.churn_safety_only,
            "churn without catch-up no longer scores safety-only"
        );
        report = report.with_adversary_leg(leg);
    }
    if !curve_ns.is_empty() {
        let sc = fd_bench::scaling_curve(&curve_ns, 1, runner);
        for p in &sc.points {
            println!(
                "scaling curve (n={}): {} events in {} us — {:.0} events/s",
                p.n, p.events, p.wall_us, p.events_per_sec,
            );
            assert_eq!(
                p.passes, p.runs,
                "scaling point n={} failed its spec check",
                p.n
            );
        }
        report = report.with_scaling(sc);
    }
    if profile {
        println!("event profile (per phase):");
        for c in &report.cells {
            println!(
                "  grid      {:<28} {:>12} events  ({} runs)",
                c.label, c.events, c.runs
            );
        }
        println!(
            "  grid      {:<28} {:>12} events  ({} runs)",
            "TOTAL", report.total_events, report.total_runs
        );
        if let Some(s) = &report.stream {
            println!(
                "  stream    {:<28} {:>12} events  ({} runs)",
                s.cell, s.events, s.runs
            );
        }
        if let Some(a) = &report.adversary_leg {
            for c in &a.cells {
                println!(
                    "  adversary {:<28} {:>12} events  ({} runs)",
                    c.label, c.events, c.runs
                );
            }
            println!(
                "  adversary {:<28} {:>12} events  ({} runs)",
                "TOTAL", a.events, a.runs
            );
        }
    }
    let json = report.to_json();
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    println!("wrote {out}");
    assert_eq!(
        report.total_passes, report.total_runs,
        "grid sweep had failing cells"
    );
    if let Some(path) = baseline {
        let base =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        match fd_bench::check_baseline(&report, &base, 30) {
            BaselineVerdict::Ok(msg) => println!("baseline check ok: {msg}"),
            BaselineVerdict::Regressed(msg) => {
                eprintln!("baseline check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
