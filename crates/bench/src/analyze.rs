//! `sweep analyze` — aggregate run directories into tables.
//!
//! Consumes one or more run directories written by `sweep --store DIR`
//! (see [`crate::store`]) and renders:
//!
//! - a **per-spec table**: runs, pass rate, mean events / messages /
//!   rounds, and mean decision time, one row per registered spec (cells
//!   whose salt is not in any manifest are grouped under the raw salt);
//! - a **phase summary**: specs bucketed by pass-rate band — the
//!   termination-phase-diagram shape (all-pass / mixed / all-fail) that a
//!   heal-time-vs-pass-rate sweep will later reuse;
//! - an **invocations table**: per-invocation runs / hits / misses /
//!   cells-written / wall time, straight from the manifests — the
//!   resume-behavior audit trail.
//!
//! Aggregation is pure over the cells: overlapping directories dedup by
//! `(salt, seed)` (later directories win), so re-analyzing a resumed
//! campaign never double-counts a cell.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::Path;

use fd_detectors::scenario::SlimReport;

use crate::store::{load_run_dir, RunDir};
use crate::table::Table;

/// Aggregated view over one or more run directories.
#[derive(Debug)]
pub struct AnalyzeReport {
    /// The loaded directories, in argument order.
    pub dirs: Vec<RunDir>,
    /// Deduped cells across all directories, keyed `(salt, seed)`.
    pub cells: HashMap<(u64, u64), SlimReport>,
    /// Total corrupt lines skipped across directories.
    pub corrupt: u64,
}

/// Per-spec aggregate used by the tables.
#[derive(Clone, Debug, Default)]
pub struct SpecAggregate {
    /// Human label (from a manifest) or `salt:<hex>` fallback.
    pub label: String,
    /// Cells aggregated.
    pub runs: u64,
    /// Cells whose check passed.
    pub passes: u64,
    /// Sum of engine events.
    pub events: u64,
    /// Sum of point-to-point messages.
    pub msgs: u64,
    /// Sum of max rounds.
    pub rounds: u64,
    /// Sum + count of last-decision times (decided runs only).
    pub decision_time_sum: u64,
    /// Number of runs that decided at all.
    pub decided_runs: u64,
}

impl SpecAggregate {
    /// Pass rate in [0, 1].
    pub fn pass_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.passes as f64 / self.runs as f64
        }
    }
}

/// Loads and merges `dirs` (later directories win on key collisions).
pub fn analyze_run_dirs(dirs: &[impl AsRef<Path>]) -> io::Result<AnalyzeReport> {
    let mut loaded = Vec::with_capacity(dirs.len());
    let mut cells = HashMap::new();
    let mut corrupt = 0u64;
    for dir in dirs {
        let run = load_run_dir(dir)?;
        corrupt += run.corrupt;
        for (key, slim) in &run.cells {
            cells.insert(*key, slim.clone());
        }
        loaded.push(run);
    }
    Ok(AnalyzeReport {
        dirs: loaded,
        cells,
        corrupt,
    })
}

impl AnalyzeReport {
    /// Groups the cells per spec salt, labeled via the manifests.
    pub fn aggregates(&self) -> Vec<SpecAggregate> {
        let mut by_salt: BTreeMap<u64, SpecAggregate> = BTreeMap::new();
        for ((salt, _seed), slim) in &self.cells {
            let agg = by_salt.entry(*salt).or_insert_with(|| {
                let label = self
                    .dirs
                    .iter()
                    .rev() // later dirs win, like the cell merge
                    .find_map(|d| d.manifest.label_for_salt(*salt))
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("salt:{salt:016x}"));
                SpecAggregate {
                    label,
                    ..SpecAggregate::default()
                }
            });
            agg.runs += 1;
            agg.passes += u64::from(slim.check.ok);
            agg.events += slim.metrics.events;
            agg.msgs += slim.metrics.msgs_sent;
            agg.rounds += slim.metrics.max_round;
            if let Some(t) = slim.metrics.last_decision {
                agg.decision_time_sum += t.0;
                agg.decided_runs += 1;
            }
        }
        by_salt.into_values().collect()
    }

    /// The per-spec pass-rate / events table.
    pub fn spec_table(&self) -> Table {
        let mut t = Table::new(
            "Sweep cells by spec",
            &[
                "spec",
                "runs",
                "pass",
                "pass %",
                "avg events",
                "avg msgs",
                "avg round",
                "avg t_dec",
            ],
        );
        for agg in self.aggregates() {
            let avg = |sum: u64| -> String {
                if agg.runs == 0 {
                    "-".into()
                } else {
                    format!("{:.1}", sum as f64 / agg.runs as f64)
                }
            };
            let t_dec = if agg.decided_runs == 0 {
                "-".into()
            } else {
                format!(
                    "{:.1}",
                    agg.decision_time_sum as f64 / agg.decided_runs as f64
                )
            };
            t.row(vec![
                agg.label.clone(),
                agg.runs.to_string(),
                agg.passes.to_string(),
                format!("{:.1}", agg.pass_rate() * 100.0),
                avg(agg.events),
                avg(agg.msgs),
                avg(agg.rounds),
                t_dec,
            ]);
        }
        t.note(format!(
            "{} cells across {} run dir(s); {} corrupt line(s) skipped",
            self.cells.len(),
            self.dirs.len(),
            self.corrupt
        ));
        t
    }

    /// The phase summary: specs bucketed by pass-rate band. This is the
    /// termination phase diagram shape — a parameter sweep reads as
    /// "which region of spec space always terminates, which never does,
    /// and where is the transition".
    pub fn phase_table(&self) -> Table {
        let mut t = Table::new(
            "Termination phase summary",
            &["phase", "specs", "runs", "example spec"],
        );
        let aggs = self.aggregates();
        type Band = (&'static str, Box<dyn Fn(f64) -> bool>);
        let bands: [Band; 3] = [
            ("all pass (100%)", Box::new(|r| r >= 1.0)),
            ("mixed (0–100%)", Box::new(|r| r > 0.0 && r < 1.0)),
            ("all fail (0%)", Box::new(|r| r <= 0.0)),
        ];
        for (name, in_band) in &bands {
            let members: Vec<&SpecAggregate> = aggs
                .iter()
                .filter(|a| a.runs > 0 && in_band(a.pass_rate()))
                .collect();
            t.row(vec![
                name.to_string(),
                members.len().to_string(),
                members.iter().map(|a| a.runs).sum::<u64>().to_string(),
                members
                    .first()
                    .map(|a| a.label.clone())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        t
    }

    /// The per-invocation wall-time table, from the manifests.
    pub fn invocations_table(&self) -> Table {
        let mut t = Table::new(
            "Invocations",
            &["dir", "runs", "hits", "misses", "wrote", "wall"],
        );
        for run in &self.dirs {
            let dir_name = run
                .dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| run.dir.display().to_string());
            for inv in &run.manifest.invocations {
                t.row(vec![
                    dir_name.clone(),
                    inv.runs.to_string(),
                    inv.hits.to_string(),
                    inv.misses.to_string(),
                    inv.wrote.to_string(),
                    format_us(inv.wall_us),
                ]);
            }
        }
        if t.rows.is_empty() {
            t.note("no invocation records (directories written without manifests?)");
        }
        t
    }

    /// Renders the full analyze output (all three tables).
    pub fn render(&self) -> String {
        format!(
            "{}{}{}",
            self.spec_table(),
            self.phase_table(),
            self.invocations_table()
        )
    }
}

fn format_us(us: u64) -> String {
    if us >= 2_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 2_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{InvocationRecord, SweepStore};
    use fd_detectors::scenario::Metrics;
    use fd_detectors::CheckOutcome;

    fn cell(seed: u64, ok: bool, events: u64) -> SlimReport {
        SlimReport {
            scenario: "analyze_probe",
            seed,
            num_faulty: 0,
            check: if ok {
                CheckOutcome::pass(None, "ok")
            } else {
                CheckOutcome::fail("no")
            },
            metrics: Metrics {
                events,
                last_decision: ok.then_some(fd_sim::Time(40)),
                ..Metrics::default()
            },
            counters: Vec::new(),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("fd-analyze-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn aggregates_and_tables_over_two_dirs() {
        let dir_a = temp_dir("a");
        let dir_b = temp_dir("b");
        {
            let store = SweepStore::open(&dir_a).unwrap();
            let spill = store.spill();
            for seed in 0..10 {
                spill(7, seed, &cell(seed, seed < 8, 100));
            }
            // Overlap: dir B rewrites seeds 5..10 and adds 10..15.
            store.record_invocation(InvocationRecord {
                runs: 10,
                hits: 0,
                misses: 10,
                wrote: 10,
                wall_us: 5_000,
            });
            store.close().unwrap();
            let store = SweepStore::open(&dir_b).unwrap();
            let spill = store.spill();
            for seed in 5..15 {
                spill(7, seed, &cell(seed, seed < 8, 100));
            }
            for seed in 0..4 {
                spill(9, seed, &cell(seed, false, 50));
            }
            store.close().unwrap();
        }
        let report = analyze_run_dirs(&[&dir_a, &dir_b]).unwrap();
        assert_eq!(report.cells.len(), 15 + 4, "dedup across dirs by key");
        let aggs = report.aggregates();
        assert_eq!(aggs.len(), 2);
        let salt7 = &aggs[0];
        assert_eq!((salt7.runs, salt7.passes), (15, 8));
        assert_eq!(salt7.decided_runs, 8);
        let salt9 = &aggs[1];
        assert_eq!((salt9.runs, salt9.passes), (4, 0));
        assert!((salt9.pass_rate()).abs() < 1e-12);
        let rendered = report.render();
        assert!(rendered.contains("Sweep cells by spec"), "{rendered}");
        assert!(rendered.contains("mixed (0–100%)"), "{rendered}");
        assert!(rendered.contains("all fail (0%)"), "{rendered}");
        assert!(rendered.contains("5.0 ms"), "{rendered}");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
