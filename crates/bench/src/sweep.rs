//! A representative grid sweep with machine-readable throughput output.
//!
//! [`representative_sweep`] drives the Figure 3 scenario over a grid of
//! `(n, t, k)` cells × crash plans × seeds through the work-stealing
//! [`Runner`], measures wall-clock throughput (runs/sec and simulator
//! events/sec), and renders everything as JSON (`BENCH_sweep.json`) for
//! tracking across commits. Cells are summarized via the streaming
//! [`Runner::sweep_summary`], so the sweep's memory footprint is
//! `O(threads)` full reports no matter how many seeds run;
//! [`streaming_sweep`] pushes that to ≥100k seeds on a single cell as an
//! explicit demonstration. No external JSON crate is available offline,
//! so the (flat, fully-controlled) document is rendered by hand.
//!
//! The report records which event-queue implementation drove the grid, and
//! [`queue_comparison`] runs both cores over the same cells — rates for
//! each plus a trace-fingerprint cross-check — so `BENCH_sweep.json`
//! tracks the calendar/heap throughput gap alongside the determinism
//! guarantee. [`check_baseline`] gates CI on per-thread `runs_per_sec`
//! against the committed report.
//!
//! Timing is recorded in microseconds (`wall_us`, clamped to ≥ 1) and both
//! rates are derived from that same duration, so the JSON stays internally
//! consistent even on sub-millisecond CI smoke runs (where the old
//! `wall_ms` rounded to 0 while `runs_per_sec` was finite).

use fd_core::harness::kset_config;
use fd_core::KsetScenario;
use fd_detectors::scenario::{
    CrashPlan, MessageAdversary, MessageRule, QueueKind, ReportCache, Runner, Scenario,
    ScenarioSpec, SweepSummary,
};
use fd_grid::ChurnKsetScenario;
use fd_sim::{FailurePattern, PSet, ProcessId, Time, TopologySchedule};
use std::path::Path;
use std::time::Instant;

use crate::store::{InvocationRecord, SweepStore};

/// One grid cell of the sweep.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Cell label (`n5_t2_k1_f2`-style).
    pub label: String,
    /// Seeds run in this cell.
    pub runs: u64,
    /// Runs whose spec check passed.
    pub passes: u64,
    /// Simulator events processed in this cell.
    pub events: u64,
    /// Messages sent in this cell.
    pub msgs: u64,
}

/// Throughput of the ≥100k-seed single-cell streaming sweep.
#[derive(Clone, Debug)]
pub struct StreamResult {
    /// Label of the cell the stream ran (`n5_t2_k2_f2`-style).
    pub cell: String,
    /// Seeds streamed.
    pub runs: u64,
    /// Runs whose spec check passed.
    pub passes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Wall-clock duration, microseconds (≥ 1).
    pub wall_us: u64,
    /// Completed scenario runs per wall-clock second.
    pub runs_per_sec: f64,
}

/// Throughput of one event-queue implementation over the cross-check grid.
#[derive(Clone, Debug)]
pub struct QueueRate {
    /// Queue implementation name (`"calendar"` / `"binary_heap"`).
    pub queue: &'static str,
    /// Completed scenario runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Simulator events per wall-clock second.
    pub events_per_sec: f64,
}

/// The queue cross-check: both implementations driven over the same grid,
/// rates for each, and whether every run's trace fingerprint matched.
#[derive(Clone, Debug)]
pub struct QueueCompare {
    /// Runs executed per implementation.
    pub runs: u64,
    /// One entry per implementation.
    pub rates: Vec<QueueRate>,
    /// Whether the two implementations produced bit-identical runs.
    pub fingerprints_equal: bool,
}

/// The adversary sweep leg: the kset grid under windowed drop/duplicate
/// rules plus the churn catch-up liveness probe, with its own gates.
#[derive(Clone, Debug)]
pub struct AdversaryLeg {
    /// One-line description of the rule set (`drop10+dup10` style).
    pub adversary: String,
    /// Drop probability (percent) inside the pre-GST window.
    pub drop_pct: u8,
    /// Duplication probability (percent) inside the pre-GST window.
    pub dup_pct: u8,
    /// Seeds run across the adversary cells.
    pub runs: u64,
    /// Runs whose spec check passed. Uniform drops sit *outside* the
    /// algorithm's liveness tolerance, so this is a degradation curve —
    /// deliberately not gated at 100%.
    pub passes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Messages the adversary lost.
    pub dropped: u64,
    /// Messages the adversary duplicated.
    pub duplicated: u64,
    /// Wall-clock duration, microseconds (≥ 1).
    pub wall_us: u64,
    /// Completed scenario runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Gate: running the adversary grid twice produced bit-identical
    /// fingerprints (the adversary is deterministic in the seed).
    pub deterministic: bool,
    /// Gate: an explicit `MessageAdversary::None` spec is
    /// fingerprint-identical to the default spec on the standard grid.
    pub none_identical: bool,
    /// Gate: every churn + catch-up run passed the liveness envelope
    /// under the adversary.
    pub churn_catchup_live: bool,
    /// Gate: with catch-up disabled the same churn runs are scored by the
    /// safety-only envelope (all pass on those terms, no liveness claimed)
    /// and at least one seed witnesses the late joiner never deciding —
    /// the hole the catch-up layer exists to close.
    pub churn_safety_only: bool,
    /// Per-cell results.
    pub cells: Vec<CellResult>,
}

/// One heal-time cell of the topology phase diagram.
#[derive(Clone, Debug)]
pub struct HealCell {
    /// Heal tick of the partition epoch (`[0, heal)` severs the islands).
    pub heal: u64,
    /// Seeds run at this heal time.
    pub runs: u64,
    /// Runs whose spec check passed (liveness *and* safety).
    pub passes: u64,
    /// Minimum decider count across the cell's runs — the wedged floor.
    pub min_deciders: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Messages the partition severed structurally.
    pub severed: u64,
}

/// Cap on the honest-rejection seeds a [`TopologyLeg`] records: enough
/// to show the rejection is systematic rather than a one-seed fluke,
/// small enough to keep the report line readable.
pub const MAX_NEGATIVE_WITNESSES: usize = 4;

/// The topology sweep leg: the `{0..n−2} | {n−1}` partition's heal time
/// swept against the termination horizon — a one-axis phase diagram of
/// liveness — plus the partition-during-join churn probe and its gates.
#[derive(Clone, Debug)]
pub struct TopologyLeg {
    /// `TopologySchedule::describe()` of the smallest-heal schedule.
    pub schedule: String,
    /// Seeds run across all heal cells.
    pub runs: u64,
    /// Runs that passed the full envelope. This is the phase diagram's
    /// y-axis, deliberately not gated at 100%: late heals *must* fail.
    pub passes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Messages severed structurally across the leg.
    pub severed: u64,
    /// Wall-clock duration, microseconds (≥ 1).
    pub wall_us: u64,
    /// Completed scenario runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Gate: the partitioned grid reruns bit-identically (the topology
    /// stream is deterministic in the seed).
    pub deterministic: bool,
    /// Gate: an explicit `TopologySchedule::None` spec is
    /// fingerprint-identical to the default spec (the unset schedule
    /// draws nothing).
    pub none_identical: bool,
    /// Gate: churn + catch-up rides out a partition that isolates the
    /// joiner through its own join instant (heal before the horizon).
    pub churn_partition_live: bool,
    /// Gate: the phase diagram actually flips — the earliest heal cell
    /// has passing runs and the latest (past-horizon) cell has none.
    pub liveness_flip: bool,
    /// Seeds at the past-horizon heal that are honest negative
    /// witnesses: liveness rejected with the mainland (`n − 1` deciders)
    /// agreeing safely among themselves. In seed order, capped at
    /// [`MAX_NEGATIVE_WITNESSES`]; empty if no seed exhibited it (all
    /// sampled seeds had the Ω leader inside the cut island).
    pub negative_witness_seeds: Vec<u64>,
    /// Per-heal cells, in sweep order (ascending heal).
    pub cells: Vec<HealCell>,
}

/// The whole sweep: cells plus throughput.
#[derive(Clone, Debug)]
pub struct SweepBenchReport {
    /// Worker threads the runner used.
    pub threads: usize,
    /// Which event-queue implementation drove the main grid.
    pub queue: &'static str,
    /// The message adversary of the main grid (always `"none"`: the grid
    /// is the clean baseline; attacked runs live in the adversary leg).
    pub adversary: String,
    /// Total runs across all cells.
    pub total_runs: u64,
    /// Total runs that passed.
    pub total_passes: u64,
    /// Total simulator events processed.
    pub total_events: u64,
    /// Wall-clock duration, microseconds (≥ 1; the source of truth both
    /// rates are derived from).
    pub wall_us: u64,
    /// Wall-clock duration, milliseconds (derived from `wall_us`, rounded
    /// up so it never reads 0 while the rates are finite).
    pub wall_ms: u64,
    /// Completed scenario runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Simulator events per wall-clock second.
    pub events_per_sec: f64,
    /// Per-cell results.
    pub cells: Vec<CellResult>,
    /// The streaming demonstration, when one was run.
    pub stream: Option<StreamResult>,
    /// The queue cross-check, when one was run.
    pub compare: Option<QueueCompare>,
    /// The large-`n` (up to 128) queue cross-check, when one was run.
    pub large_n: Option<QueueCompare>,
    /// The `Auto` queue-heuristic leg, when one was run.
    pub auto_queue: Option<QueueCompare>,
    /// The report-cache leg, when one was run.
    pub cache: Option<CacheLeg>,
    /// The durable sweep-store leg, when one was run.
    pub store: Option<StoreLeg>,
    /// The adversary sweep leg, when one was run.
    pub adversary_leg: Option<AdversaryLeg>,
    /// The topology (partition phase-diagram) leg, when one was run.
    pub topology_leg: Option<TopologyLeg>,
    /// The `n`-scaling curve, when one was run.
    pub scaling: Option<ScalingCurve>,
}

/// The grid the sweep covers: `(n, t)` scales × `k` × crash count. Public
/// so the sweep bin can register the specs in a run directory's manifest.
pub fn grid_cells(seeds_per_cell: u64, queue: QueueKind) -> Vec<(String, ScenarioSpec, u64)> {
    grid(seeds_per_cell, queue)
}

fn grid(seeds_per_cell: u64, queue: QueueKind) -> Vec<(String, ScenarioSpec, u64)> {
    let mut cells = Vec::new();
    for &(n, t) in &[(5usize, 2usize), (7, 3), (9, 4)] {
        for k in [1usize, 2] {
            for &f in &[0usize, t] {
                let label = format!("n{n}_t{t}_k{k}_f{f}");
                let spec = kset_config(n, t, k)
                    .gst(Time(400))
                    .queue(queue)
                    .crashes(CrashPlan::Random { f, by: Time(500) });
                cells.push((label, spec, seeds_per_cell));
            }
        }
    }
    cells
}

/// Runs the representative grid sweep and measures throughput. Each cell is
/// folded into a [`SweepSummary`] as its runs finish — no per-run report
/// outlives its cell's fold frontier. The grid runs on the default
/// (calendar) event core; see [`representative_sweep_on`] to pick one.
pub fn representative_sweep(seeds_per_cell: u64, runner: Runner) -> SweepBenchReport {
    representative_sweep_on(seeds_per_cell, runner, QueueKind::default())
}

/// As [`representative_sweep`] on an explicit event-queue implementation.
pub fn representative_sweep_on(
    seeds_per_cell: u64,
    runner: Runner,
    queue: QueueKind,
) -> SweepBenchReport {
    let cells = grid(seeds_per_cell, queue);
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(cells.len());
    for (label, spec, seeds) in cells {
        let summary = runner.sweep_summary(&KsetScenario, &spec, 0..seeds);
        out.push(CellResult {
            label,
            runs: summary.runs,
            passes: summary.passes,
            events: summary.total_events,
            msgs: summary.total_msgs,
        });
    }
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    let total_runs: u64 = out.iter().map(|c| c.runs).sum();
    let total_passes: u64 = out.iter().map(|c| c.passes).sum();
    let total_events: u64 = out.iter().map(|c| c.events).sum();
    let secs = wall_us as f64 / 1e6;
    SweepBenchReport {
        threads: runner.threads(),
        queue: queue.name(),
        adversary: MessageAdversary::None.describe(),
        total_runs,
        total_passes,
        total_events,
        wall_us,
        wall_ms: wall_us.div_ceil(1000),
        runs_per_sec: total_runs as f64 / secs,
        events_per_sec: total_events as f64 / secs,
        cells: out,
        stream: None,
        compare: None,
        large_n: None,
        auto_queue: None,
        cache: None,
        store: None,
        adversary_leg: None,
        topology_leg: None,
        scaling: None,
    }
}

/// Drives `make_grid`'s cells once per event-queue choice in `kinds`,
/// measuring each one's throughput and cross-checking that every run's
/// trace fingerprint is identical between them.
fn compare_on_grid(
    runner: Runner,
    kinds: &[QueueKind],
    make_grid: impl Fn(QueueKind) -> Vec<(String, ScenarioSpec, u64)>,
) -> QueueCompare {
    let mut rates = Vec::new();
    let mut prints: Vec<Vec<u64>> = Vec::new();
    let mut runs = 0;
    for &queue in kinds {
        let cells = make_grid(queue);
        let t0 = Instant::now();
        let mut fp = Vec::new();
        let mut events = 0u64;
        for (_, spec, seeds) in cells {
            for rep in runner.sweep(&KsetScenario, &spec, 0..seeds) {
                events += rep.metrics.events;
                fp.push(rep.fingerprint());
            }
        }
        let secs = (t0.elapsed().as_micros() as u64).max(1) as f64 / 1e6;
        runs = fp.len() as u64;
        rates.push(QueueRate {
            queue: queue.name(),
            runs_per_sec: runs as f64 / secs,
            events_per_sec: events as f64 / secs,
        });
        prints.push(fp);
    }
    QueueCompare {
        runs,
        rates,
        fingerprints_equal: prints.windows(2).all(|w| w[0] == w[1]),
    }
}

/// Drives the whole grid once per event-queue implementation, measuring
/// each one's throughput and cross-checking that every run's trace
/// fingerprint is identical between them — the bench-smoke leg of the
/// scheduler determinism contract.
pub fn queue_comparison(seeds_per_cell: u64, runner: Runner) -> QueueCompare {
    compare_on_grid(
        runner,
        &[QueueKind::Calendar, QueueKind::BinaryHeap],
        |queue| grid(seeds_per_cell, queue),
    )
}

/// The large-`n` cells: the scales `PSet` supports but the standard grid
/// never exercises, up to the 128-process maximum, with `f = t` crashes.
fn large_grid(seeds_per_cell: u64, queue: QueueKind) -> Vec<(String, ScenarioSpec, u64)> {
    let mut cells = Vec::new();
    for &(n, t) in &[(17usize, 8usize), (33, 16), (64, 31), (128, 63)] {
        let label = format!("n{n}_t{t}_k2_f{t}");
        let spec = kset_config(n, t, 2)
            .gst(Time(400))
            .queue(queue)
            .crashes(CrashPlan::Random {
                f: t,
                by: Time(500),
            });
        cells.push((label, spec, seeds_per_cell));
    }
    cells
}

/// The large-`n` smoke leg: `n` up to 128 on both event cores with the
/// fingerprint cross-check — the queue determinism contract at the scales
/// the calendar queue's bucket resizing actually stretches.
pub fn large_n_comparison(seeds_per_cell: u64, runner: Runner) -> QueueCompare {
    compare_on_grid(
        runner,
        &[QueueKind::Calendar, QueueKind::BinaryHeap],
        |queue| large_grid(seeds_per_cell, queue),
    )
}

/// The `QueueKind::Auto` proving leg: the large-`n` grid (17/33/64/128)
/// driven by `Auto` *and* by both concrete queues, with the fingerprint
/// cross-check — so `BENCH_sweep.json` records that the per-run heuristic
/// picks a core at least as fast as the better hand-picked one (the bin
/// gates `auto` at no more than 30% below `max(calendar, heap)`) without
/// ever changing a trace.
pub fn auto_queue_comparison(seeds_per_cell: u64, runner: Runner) -> QueueCompare {
    compare_on_grid(
        runner,
        &[QueueKind::Auto, QueueKind::Calendar, QueueKind::BinaryHeap],
        |queue| large_grid(seeds_per_cell, queue),
    )
}

/// One point of the events/s-vs-`n` scaling curve.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound (`(n − 1) / 2`, maximal for `t < n/2`).
    pub t: usize,
    /// Seeds run at this size.
    pub runs: u64,
    /// Runs whose spec check passed.
    pub passes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Messages sent.
    pub msgs: u64,
    /// Wall-clock duration, microseconds (≥ 1).
    pub wall_us: u64,
    /// Simulator events per wall-clock second at this size.
    pub events_per_sec: f64,
}

/// The `n`-scaling leg: the same failure-free `k = 2` cell at every size
/// in `ns`, so `BENCH_sweep.json` carries an events/s-vs-`n` curve into
/// the arena/bitset frontier (`n` up to [`fd_sim::MAX_PROCESSES`]).
#[derive(Clone, Debug)]
pub struct ScalingCurve {
    /// The process counts measured, in order (recorded in the JSON so a
    /// trimmed CI curve is distinguishable from the full one).
    pub ns: Vec<usize>,
    /// Seeds per size.
    pub seeds_per_cell: u64,
    /// One point per entry of `ns`.
    pub points: Vec<ScalePoint>,
}

/// Measures the events/s-vs-`n` scaling curve at the sizes in `ns`.
///
/// Failure-free (crashes change the workload shape per size, which would
/// confound the curve), `k = 2`, maximal `t`, on the spec's `Auto` queue.
/// Every run's spec check still applies — a silent wrong answer at
/// `n = 1024` fails the leg rather than becoming a fast number.
///
/// # Panics
///
/// Panics if any `n` exceeds [`fd_sim::MAX_PROCESSES`].
pub fn scaling_curve(ns: &[usize], seeds_per_cell: u64, runner: Runner) -> ScalingCurve {
    let mut points = Vec::with_capacity(ns.len());
    for &n in ns {
        assert!(
            n <= fd_sim::MAX_PROCESSES,
            "scaling point n={n} exceeds MAX_PROCESSES={}",
            fd_sim::MAX_PROCESSES
        );
        let t = (n - 1) / 2;
        // A short GST: the curve measures event-routing throughput, and
        // every pre-GST tick buys another O(n²)-message round of churn —
        // at n = 1024 the standard gst = 400 alone is tens of millions of
        // events before the oracle even lets anyone decide.
        let spec = kset_config(n, t, 2).gst(Time(100));
        let t0 = Instant::now();
        let summary = runner.sweep_summary(&KsetScenario, &spec, 0..seeds_per_cell);
        let wall_us = (t0.elapsed().as_micros() as u64).max(1);
        points.push(ScalePoint {
            n,
            t,
            runs: summary.runs,
            passes: summary.passes,
            events: summary.total_events,
            msgs: summary.total_msgs,
            wall_us,
            events_per_sec: summary.total_events as f64 / (wall_us as f64 / 1e6),
        });
    }
    ScalingCurve {
        ns: ns.to_vec(),
        seeds_per_cell,
        points,
    }
}

/// The report-cache proving leg.
#[derive(Clone, Debug)]
pub struct CacheLeg {
    /// Runs computed by the cold pass (all misses).
    pub cold_runs: u64,
    /// Runs requested by the warm pass (all hits on the overlap).
    pub warm_runs: u64,
    /// Cache hits across both passes.
    pub hits: u64,
    /// Cache misses across both passes (the cells actually computed).
    pub misses: u64,
    /// Whether the warm summaries were bit-identical to the cold ones.
    pub identical: bool,
    /// Wall-clock of the cold pass, microseconds (≥ 1).
    pub cold_wall_us: u64,
    /// Wall-clock of the warm pass, microseconds (≥ 1).
    pub warm_wall_us: u64,
}

/// Runs the cache leg: the representative grid is swept cold through a
/// fresh [`ReportCache`], then an *overlapping* grid — the same cells, the
/// E4/E10 sharing pattern, but driven on the other event core to prove the
/// cache key ignores the queue knob — is swept warm. The warm pass must be
/// bit-identical summary for summary, compute nothing new on the overlap,
/// and report its hits; the sweep bin gates on `identical && hits > 0`.
pub fn cache_leg(seeds_per_cell: u64, runner: Runner) -> CacheLeg {
    // Deliberately leaked: `Runner::with_cache` wants `'static` (that is
    // what keeps the runner `Copy`), and the leg runs once per process.
    let cache: &'static ReportCache = Box::leak(Box::new(ReportCache::new()));
    let runner = runner.with_cache(cache);
    let sweep_all = |queue: QueueKind| -> Vec<SweepSummary> {
        grid(seeds_per_cell, queue)
            .into_iter()
            .map(|(_, spec, seeds)| runner.sweep_summary(&KsetScenario, &spec, 0..seeds))
            .collect()
    };
    let t0 = Instant::now();
    let cold = sweep_all(QueueKind::Calendar);
    let cold_wall_us = (t0.elapsed().as_micros() as u64).max(1);
    let t1 = Instant::now();
    let warm = sweep_all(QueueKind::BinaryHeap);
    let warm_wall_us = (t1.elapsed().as_micros() as u64).max(1);
    CacheLeg {
        cold_runs: cold.iter().map(|s| s.runs).sum(),
        warm_runs: warm.iter().map(|s| s.runs).sum(),
        hits: cache.hits(),
        misses: cache.misses(),
        identical: cold == warm,
        cold_wall_us,
        warm_wall_us,
    }
}

/// The durable sweep-store proving leg: the on-disk twin of [`CacheLeg`].
#[derive(Clone, Debug)]
pub struct StoreLeg {
    /// Runs computed by the cold pass (all misses, all persisted).
    pub cold_runs: u64,
    /// Wall-clock of the cold pass (sweep + final flush), microseconds.
    pub cold_wall_us: u64,
    /// Cells the cold pass flushed to the run directory.
    pub wrote: u64,
    /// Wall-clock of reopening the directory and hydrating a fresh cache,
    /// microseconds.
    pub open_wall_us: u64,
    /// Cells hydrated into the fresh cache on reopen.
    pub hydrated: u64,
    /// Runs requested by the warm (resumed) pass.
    pub warm_runs: u64,
    /// Cache hits during the warm pass (gate: equals `warm_runs`).
    pub warm_hits: u64,
    /// Cache misses during the warm pass (gate: 0 — nothing recomputed).
    pub warm_misses: u64,
    /// Wall-clock of the warm sweep itself, microseconds.
    pub warm_wall_us: u64,
    /// Whether warm summaries were bit-identical to cold, cell for cell.
    pub identical: bool,
    /// `cold_wall_us / (open_wall_us + warm_wall_us)` — the resume
    /// speedup including the cost of reading the directory back.
    pub speedup: f64,
}

/// The cell set the store leg proves itself on: the representative grid
/// plus two campaign-scale cells (n = 17 and n = 33, failure-free). The
/// large cells matter for the speedup claim: replaying a persisted cell
/// costs microseconds *regardless of what it cost to compute*, so the
/// resume advantage scales with per-run simulation cost — the small-n
/// grid alone would understate what a real (large-n, many-seed) campaign
/// gets back from the store.
fn store_grid(seeds_per_cell: u64, queue: QueueKind) -> Vec<(String, ScenarioSpec, u64)> {
    let mut cells = grid(seeds_per_cell, queue);
    for &(n, t) in &[(17usize, 8usize), (33, 16)] {
        let label = format!("n{n}_t{t}_k2_f0");
        let spec = kset_config(n, t, 2).gst(Time(400)).queue(queue);
        cells.push((label, spec, seeds_per_cell));
    }
    cells
}

/// Runs the store leg against `dir` (which should be empty or absent): the
/// store grid ([`store_grid`]: the representative grid plus n = 17/33
/// cells) is swept cold through a fresh [`ReportCache`] whose spill hook
/// persists into a [`SweepStore`], the store is closed, and then —
/// simulating a new process — the directory is reopened, a *second* fresh
/// cache is hydrated from it, and the same grid is swept warm. The warm
/// pass must be bit-identical, all hits, zero misses; the sweep bin gates
/// on exactly that. Both passes run single-queue (the queue-knob
/// independence is already proven by [`cache_leg`]).
pub fn store_leg(seeds_per_cell: u64, runner: Runner, dir: &Path) -> std::io::Result<StoreLeg> {
    let queue = QueueKind::default();
    let sweep_all = |runner: Runner| -> Vec<SweepSummary> {
        store_grid(seeds_per_cell, queue)
            .into_iter()
            .map(|(_, spec, seeds)| runner.sweep_summary(&KsetScenario, &spec, 0..seeds))
            .collect()
    };
    // Cold: compute everything, spill every cell into the run directory.
    let store = SweepStore::open(dir)?;
    for (label, spec, _) in store_grid(seeds_per_cell, queue) {
        store.register_spec(&label, &KsetScenario.cache_tag(), &spec);
    }
    // Leaked for the same `'static` reason as in `cache_leg`.
    let cold_cache: &'static ReportCache = Box::leak(Box::new(ReportCache::new()));
    cold_cache.set_spill(Some(store.spill()));
    let t0 = Instant::now();
    let cold = sweep_all(runner.with_cache(cold_cache));
    let cold_runs: u64 = cold.iter().map(|s| s.runs).sum();
    let cold_wrote = store.flush()?;
    store.record_invocation(InvocationRecord {
        runs: cold_runs,
        hits: cold_cache.hits(),
        misses: cold_cache.misses(),
        wrote: cold_wrote,
        wall_us: (t0.elapsed().as_micros() as u64).max(1),
    });
    let summary = store.close()?;
    let cold_wall_us = (t0.elapsed().as_micros() as u64).max(1);
    cold_cache.set_spill(None);

    // Warm: a fresh cache in a "new process", hydrated from disk.
    let t1 = Instant::now();
    let store = SweepStore::open(dir)?;
    let warm_cache: &'static ReportCache = Box::leak(Box::new(ReportCache::new()));
    let hydrated = store.hydrate_into(warm_cache) as u64;
    let open_wall_us = (t1.elapsed().as_micros() as u64).max(1);
    let t2 = Instant::now();
    let warm = sweep_all(runner.with_cache(warm_cache));
    let warm_wall_us = (t2.elapsed().as_micros() as u64).max(1);
    let warm_runs: u64 = warm.iter().map(|s| s.runs).sum();
    store.record_invocation(InvocationRecord {
        runs: warm_runs,
        hits: warm_cache.hits(),
        misses: warm_cache.misses(),
        wrote: 0,
        wall_us: warm_wall_us,
    });
    store.close()?;
    Ok(StoreLeg {
        cold_runs,
        cold_wall_us,
        wrote: summary.wrote,
        open_wall_us,
        hydrated,
        warm_runs,
        warm_hits: warm_cache.hits(),
        warm_misses: warm_cache.misses(),
        warm_wall_us,
        identical: cold == warm,
        speedup: cold_wall_us as f64 / (open_wall_us + warm_wall_us) as f64,
    })
}

/// The pre-GST drop/duplicate rule set of the adversary leg.
fn windowed_adversary(drop_pct: u8, dup_pct: u8, gst: Time) -> MessageAdversary {
    MessageAdversary::Rules(vec![
        MessageRule::drop(drop_pct).window(Time::ZERO, gst),
        MessageRule::duplicate(dup_pct).window(Time::ZERO, gst),
    ])
}

/// Runs the adversary sweep leg:
///
/// * the `(n, t, k)` grid — larger scales included, up to `n = 65` — under
///   a pre-GST drop/duplicate adversary, recording the pass-rate
///   degradation curve (uniform drops are outside the algorithm's
///   liveness tolerance by design, so 100% is *not* expected);
/// * a determinism gate (the attacked grid reruns bit-identically);
/// * a `MessageAdversary::None` differential gate (explicitly threading
///   the empty adversary is fingerprint-identical to the default spec);
/// * the churn probe: churn + catch-up under the adversary must pass the
///   liveness envelope, and the same runs without catch-up must stay
///   safety-only (late joiner undecided).
pub fn adversary_leg(
    seeds_per_cell: u64,
    runner: Runner,
    drop_pct: u8,
    dup_pct: u8,
) -> AdversaryLeg {
    let gst = Time(400);
    let adv = windowed_adversary(drop_pct, dup_pct, gst);
    let scales: &[(usize, usize)] = &[(5, 2), (9, 4), (17, 8), (33, 16), (65, 32)];
    let make_cells = || {
        scales.iter().map(|&(n, t)| {
            let label = format!("adv_n{n}_t{t}_k2_f0");
            // Failure-free: crashes would eat the quorum slack that lets
            // the window's permanent losses be absorbed at all.
            let spec = kset_config(n, t, 2)
                .gst(gst)
                .adversary(adv.clone())
                .crashes(CrashPlan::None);
            (label, spec)
        })
    };
    let t0 = Instant::now();
    let mut cells = Vec::new();
    let mut prints: Vec<u64> = Vec::new();
    let mut dropped = 0;
    let mut duplicated = 0;
    let mut events = 0;
    for (label, spec) in make_cells() {
        let reports = runner.sweep(&KsetScenario, &spec, 0..seeds_per_cell);
        let mut cell = CellResult {
            label,
            runs: 0,
            passes: 0,
            events: 0,
            msgs: 0,
        };
        for rep in reports {
            cell.runs += 1;
            cell.passes += rep.check.ok as u64;
            cell.events += rep.metrics.events;
            cell.msgs += rep.metrics.msgs_sent;
            events += rep.metrics.events;
            dropped += rep.trace.counter(fd_sim::counter::DROPPED);
            duplicated += rep.trace.counter(fd_sim::counter::DUPLICATED);
            prints.push(rep.fingerprint());
        }
        cells.push(cell);
    }
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    // Determinism gate: the attacked grid reruns bit-identically.
    let mut reprints: Vec<u64> = Vec::new();
    for (_, spec) in make_cells() {
        for rep in runner.sweep(&KsetScenario, &spec, 0..seeds_per_cell) {
            reprints.push(rep.fingerprint());
        }
    }
    let deterministic = prints == reprints;
    // None-differential gate on the standard grid shape.
    let none_identical = {
        let base = kset_config(5, 2, 2)
            .gst(gst)
            .crashes(CrashPlan::Anarchic { by: Time(400) });
        (0..4).all(|seed| {
            let spec = base.with_seed(seed);
            let explicit = spec.clone().adversary(MessageAdversary::None);
            KsetScenario.run(&spec).fingerprint() == KsetScenario.run(&explicit).fingerprint()
        })
    };
    // Churn probe: quorum slack (one crash < t) + a drop window closing at
    // the join, the configuration whose liveness the catch-up layer
    // restores (see fd_grid::churn for the boundary discussion).
    let churn_fp = FailurePattern::builder(6)
        .crash(ProcessId(1), Time(100))
        .join(ProcessId(5), Time(600))
        .build();
    let churn_adv = MessageAdversary::Rules(vec![
        MessageRule::drop(drop_pct.min(25)).window(Time::ZERO, Time(600)),
        MessageRule::duplicate(dup_pct.min(15)).window(Time::ZERO, Time(1_200)),
    ]);
    let churn_base = ChurnKsetScenario::spec(6, 2, 1)
        .gst(Time(300))
        .max_time(Time(60_000))
        .crashes(CrashPlan::Explicit(churn_fp))
        .adversary(churn_adv);
    let mut churn_catchup_live = true;
    let mut bare_all_safe = true;
    let mut stuck_joiner_witnessed = false;
    for seed in 0..seeds_per_cell.clamp(1, 4) {
        let live = ChurnKsetScenario.run(&churn_base.with_seed(seed));
        churn_catchup_live &= live.check.ok;
        let bare = ChurnKsetScenario.run(&churn_base.with_seed(seed).catch_up(false));
        bare_all_safe &= bare.check.ok && bare.check.detail.contains("liveness not claimed");
        // On some seeds every decision lands after the join and the joiner
        // decides via the (exempt) reliable broadcast anyway; the envelope
        // still only claims safety. At least one seed must witness the
        // genuinely stuck joiner.
        stuck_joiner_witnessed |= !bare.trace.deciders().contains(ProcessId(5));
    }
    let churn_safety_only = bare_all_safe && stuck_joiner_witnessed;
    let runs: u64 = cells.iter().map(|c| c.runs).sum();
    let passes: u64 = cells.iter().map(|c| c.passes).sum();
    AdversaryLeg {
        adversary: adv.describe(),
        drop_pct,
        dup_pct,
        runs,
        passes,
        events,
        dropped,
        duplicated,
        wall_us,
        runs_per_sec: runs as f64 / (wall_us as f64 / 1e6),
        deterministic,
        none_identical,
        churn_catchup_live,
        churn_safety_only,
        cells,
    }
}

/// The topology leg: sweep the heal time of a `{0..3} | {4}` partition on
/// the `n = 5, t = 2, k = 2` scenario against the termination horizon
/// (`max_time = 100_000`, GST 400) and record pass-rate per heal — a
/// one-axis termination phase diagram. The physics it charts (see
/// `fd_grid::churn` and the scenario-engine topology tests): phase
/// messages are plain broadcasts with no retransmission, so the cut
/// process can only decide through the heal-delayed `DECISION` reliable
/// broadcast, and only when the post-GST Ω leader sits in the mainland.
/// Pass ⇔ leader in mainland ∧ heal before horizon; the last grid point
/// (heal = 2 × horizon) therefore *must* fail — its first
/// mainland-leader seed is recorded as the negative witness (liveness
/// honestly rejected with `n − 1` deciders in safe agreement).
///
/// Gates: determinism (the partitioned grid reruns bit-identically), the
/// `TopologySchedule::None` differential (unset schedule draws nothing),
/// the churn probe (catch-up rides out a partition that isolates a
/// joiner through its join instant), and the liveness flip itself.
pub fn topology_leg(seeds_per_cell: u64, runner: Runner) -> TopologyLeg {
    let n = 5usize;
    let horizon = Time(100_000);
    let islands = || -> Vec<PSet> {
        vec![
            (0..n - 1).map(ProcessId).collect(),
            (n - 1..n).map(ProcessId).collect(),
        ]
    };
    // Two decades below the horizon, one straddling cell, one past it.
    let heal_grid: &[u64] = &[200, 2_000, 20_000, 200_000];
    let spec_at = |heal: u64| {
        kset_config(n, 2, 2)
            .gst(Time(400))
            .max_time(horizon)
            .topology(TopologySchedule::partition_until(islands(), Time(heal)))
    };
    let t0 = Instant::now();
    let mut cells = Vec::new();
    let mut prints: Vec<u64> = Vec::new();
    let mut events = 0;
    let mut severed = 0;
    let mut negative_witness_seeds = Vec::new();
    for &heal in heal_grid {
        let reports = runner.sweep(&KsetScenario, &spec_at(heal), 0..seeds_per_cell);
        let mut cell = HealCell {
            heal,
            runs: 0,
            passes: 0,
            min_deciders: u64::MAX,
            events: 0,
            severed: 0,
        };
        for rep in reports {
            let deciders = rep.trace.deciders().len() as u64;
            cell.runs += 1;
            cell.passes += rep.check.ok as u64;
            cell.min_deciders = cell.min_deciders.min(deciders);
            cell.events += rep.metrics.events;
            cell.severed += rep.trace.counter(fd_sim::counter::PARTITIONED);
            if heal > horizon.ticks()
                && negative_witness_seeds.len() < MAX_NEGATIVE_WITNESSES
                && !rep.check.ok
                && deciders == (n - 1) as u64
            {
                negative_witness_seeds.push(rep.seed());
            }
            prints.push(rep.fingerprint());
        }
        events += cell.events;
        severed += cell.severed;
        cells.push(cell);
    }
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    // Determinism gate: the partitioned grid reruns bit-identically.
    let mut reprints: Vec<u64> = Vec::new();
    for &heal in heal_grid {
        for rep in runner.sweep(&KsetScenario, &spec_at(heal), 0..seeds_per_cell) {
            reprints.push(rep.fingerprint());
        }
    }
    let deterministic = prints == reprints;
    // None-differential gate: the unset schedule draws nothing.
    let none_identical = {
        let base = kset_config(5, 2, 2)
            .gst(Time(400))
            .crashes(CrashPlan::Anarchic { by: Time(400) });
        (0..4).all(|seed| {
            let spec = base.with_seed(seed);
            let explicit = spec.clone().topology(TopologySchedule::None);
            KsetScenario.run(&spec).fingerprint() == KsetScenario.run(&explicit).fingerprint()
        })
    };
    // Churn probe: the joiner comes up *inside* the partition; catch-up's
    // retry loop must carry it across the heal.
    let churn_fp = FailurePattern::builder(6)
        .crash(ProcessId(1), Time(100))
        .join(ProcessId(5), Time(600))
        .build();
    let churn_islands: Vec<PSet> = vec![
        (0..5).map(ProcessId).collect(),
        (5..6).map(ProcessId).collect(),
    ];
    let churn_base = ChurnKsetScenario::spec(6, 2, 1)
        .gst(Time(300))
        .max_time(Time(60_000))
        .crashes(CrashPlan::Explicit(churn_fp))
        .topology(TopologySchedule::partition_until(
            churn_islands,
            Time(1_200),
        ));
    let churn_partition_live = (0..seeds_per_cell.clamp(1, 4)).all(|seed| {
        let rep = ChurnKsetScenario.run(&churn_base.with_seed(seed));
        rep.check.ok
            && rep.trace.deciders().contains(ProcessId(5))
            && rep.trace.counter(fd_sim::counter::PARTITIONED) > 0
    });
    let liveness_flip =
        cells.first().is_some_and(|c| c.passes > 0) && cells.last().is_some_and(|c| c.passes == 0);
    let runs: u64 = cells.iter().map(|c| c.runs).sum();
    let passes: u64 = cells.iter().map(|c| c.passes).sum();
    TopologyLeg {
        schedule: spec_at(heal_grid[0]).topology.describe(),
        runs,
        passes,
        events,
        severed,
        wall_us,
        runs_per_sec: runs as f64 / (wall_us as f64 / 1e6),
        deterministic,
        none_identical,
        churn_partition_live,
        liveness_flip,
        negative_witness_seeds,
        cells,
    }
}

/// Verdict of [`check_baseline`].
#[derive(Clone, Debug, PartialEq)]
pub enum BaselineVerdict {
    /// Throughput is within the allowed envelope of the baseline, or the
    /// comparison was skipped as not like-for-like (the message says
    /// which).
    Ok(String),
    /// Throughput regressed beyond the allowed envelope.
    Regressed(String),
}

/// Compares this report's `runs_per_sec` against a committed
/// `BENCH_sweep.json` baseline. Only like-for-like runs are gated: if the
/// thread counts differ, the comparison is skipped (thread scaling is
/// nowhere near linear on SMT CI runners, so normalizing per thread would
/// manufacture spurious failures). Returns
/// [`BaselineVerdict::Regressed`] when the current rate falls more than
/// `max_regression_pct` percent below the baseline's.
pub fn check_baseline(
    report: &SweepBenchReport,
    baseline_json: &str,
    max_regression_pct: u64,
) -> BaselineVerdict {
    let Some(base_rate) = json_number(baseline_json, "runs_per_sec") else {
        return BaselineVerdict::Ok("baseline has no runs_per_sec field; skipping".into());
    };
    let base_threads = json_number(baseline_json, "threads")
        .unwrap_or(1.0)
        .max(1.0);
    if base_threads as usize != report.threads {
        return BaselineVerdict::Ok(format!(
            "baseline ran on {} thread(s), this report on {}; not like-for-like, skipping",
            base_threads, report.threads
        ));
    }
    let floor = base_rate * (100 - max_regression_pct.min(100)) as f64 / 100.0;
    let msg = format!(
        "current {:.1} runs/s vs baseline {:.1} on {} thread(s) (floor {:.1}, allowed regression {}%)",
        report.runs_per_sec, base_rate, report.threads, floor, max_regression_pct
    );
    if report.runs_per_sec < floor {
        BaselineVerdict::Regressed(msg)
    } else {
        BaselineVerdict::Ok(msg)
    }
}

/// Extracts the first top-level `"key": <number>` from the (flat,
/// fully-controlled) JSON this module itself writes. Not a JSON parser —
/// just enough for the regression gate, with no external crates available.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The single cell [`streaming_sweep`] drives, public for the same
/// manifest-registration reason as [`grid_cells`].
pub fn stream_cell(queue: QueueKind) -> (String, ScenarioSpec) {
    let (n, t, k, f) = (5, 2, 2, 2);
    let spec = kset_config(n, t, k)
        .gst(Time(400))
        .queue(queue)
        .crashes(CrashPlan::Random { f, by: Time(500) });
    (format!("n{n}_t{t}_k{k}_f{f}"), spec)
}

/// Streams `seeds` runs of one representative crashy cell (`n5_t2_k2_f2`)
/// through [`Runner::sweep_fold`]. Memory stays `O(threads)` full reports
/// regardless of `seeds`, which is the point: this is the million-seed mode
/// the eager sweep cannot afford. Runs on the default (calendar) event
/// core; see [`streaming_sweep_on`] to pick one.
pub fn streaming_sweep(seeds: u64, runner: Runner) -> StreamResult {
    streaming_sweep_on(seeds, runner, QueueKind::default())
}

/// As [`streaming_sweep`] on an explicit event-queue implementation (so a
/// `--queue binary_heap` report's stream numbers are actually measured on
/// the heap).
pub fn streaming_sweep_on(seeds: u64, runner: Runner, queue: QueueKind) -> StreamResult {
    let (label, spec) = stream_cell(queue);
    let t0 = Instant::now();
    let summary = runner.sweep_summary(&KsetScenario, &spec, 0..seeds);
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    StreamResult {
        cell: label,
        runs: summary.runs,
        passes: summary.passes,
        events: summary.total_events,
        wall_us,
        runs_per_sec: summary.runs as f64 / (wall_us as f64 / 1e6),
    }
}

impl SweepBenchReport {
    /// Attaches a streaming demonstration to the report (builder style).
    pub fn with_stream(mut self, stream: StreamResult) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Attaches a queue cross-check to the report (builder style).
    pub fn with_compare(mut self, compare: QueueCompare) -> Self {
        self.compare = Some(compare);
        self
    }

    /// Attaches a large-`n` cross-check to the report (builder style).
    pub fn with_large_n(mut self, large_n: QueueCompare) -> Self {
        self.large_n = Some(large_n);
        self
    }

    /// Attaches an `Auto`-queue leg to the report (builder style).
    pub fn with_auto_queue(mut self, auto_queue: QueueCompare) -> Self {
        self.auto_queue = Some(auto_queue);
        self
    }

    /// Attaches a report-cache leg to the report (builder style).
    pub fn with_cache_leg(mut self, cache: CacheLeg) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a durable-store leg to the report (builder style).
    pub fn with_store_leg(mut self, store: StoreLeg) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches an adversary leg to the report (builder style).
    pub fn with_adversary_leg(mut self, leg: AdversaryLeg) -> Self {
        self.adversary_leg = Some(leg);
        self
    }

    /// Attaches the topology (partition phase-diagram) leg.
    pub fn with_topology_leg(mut self, leg: TopologyLeg) -> Self {
        self.topology_leg = Some(leg);
        self
    }

    /// Attaches an `n`-scaling curve to the report (builder style).
    pub fn with_scaling(mut self, scaling: ScalingCurve) -> Self {
        self.scaling = Some(scaling);
        self
    }

    /// A deterministic digest of the grid results (cells + stream): two
    /// invocations that produced bit-identical sweeps render the same
    /// digest, so CI can diff the `grid_digest` line between a cold store
    /// run and its resume. Rendered as hex in the JSON (a raw u64 would be
    /// mangled by f64-based readers).
    pub fn grid_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for c in &self.cells {
            c.label.hash(&mut h);
            (c.runs, c.passes, c.events, c.msgs).hash(&mut h);
        }
        if let Some(st) = &self.stream {
            st.cell.hash(&mut h);
            (st.runs, st.passes, st.events).hash(&mut h);
        }
        h.finish()
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"grid_sweep\",\n");
        s.push_str("  \"scenario\": \"kset_omega\",\n");
        s.push_str(&format!("  \"queue\": \"{}\",\n", self.queue));
        s.push_str(&format!("  \"adversary\": \"{}\",\n", self.adversary));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        s.push_str(&format!("  \"total_passes\": {},\n", self.total_passes));
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events));
        s.push_str(&format!("  \"wall_us\": {},\n", self.wall_us));
        s.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        s.push_str(&format!("  \"runs_per_sec\": {:.2},\n", self.runs_per_sec));
        s.push_str(&format!(
            "  \"events_per_sec\": {:.2},\n",
            self.events_per_sec
        ));
        s.push_str(&format!(
            "  \"grid_digest\": \"{:016x}\",\n",
            self.grid_digest()
        ));
        if let Some(st) = &self.stream {
            s.push_str(&format!(
                "  \"stream\": {{\"cell\": \"{}\", \"runs\": {}, \"passes\": {}, \"events\": {}, \"wall_us\": {}, \"runs_per_sec\": {:.2}}},\n",
                st.cell, st.runs, st.passes, st.events, st.wall_us, st.runs_per_sec
            ));
        }
        if let Some(cmp) = &self.compare {
            s.push_str(&format!(
                "  \"queue_fingerprints_equal\": {},\n",
                cmp.fingerprints_equal
            ));
            s.push_str("  \"queues\": [\n");
            for (i, r) in cmp.rates.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"impl\": \"{}\", \"runs\": {}, \"runs_per_sec\": {:.2}, \"events_per_sec\": {:.2}}}{}\n",
                    r.queue,
                    cmp.runs,
                    r.runs_per_sec,
                    r.events_per_sec,
                    if i + 1 == cmp.rates.len() { "" } else { "," }
                ));
            }
            s.push_str("  ],\n");
        }
        if let Some(lg) = &self.large_n {
            s.push_str(&format!(
                "  \"large_n_fingerprints_equal\": {},\n",
                lg.fingerprints_equal
            ));
            s.push_str("  \"large_n\": [\n");
            for (i, r) in lg.rates.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"impl\": \"{}\", \"runs\": {}, \"runs_per_sec\": {:.2}, \"events_per_sec\": {:.2}}}{}\n",
                    r.queue,
                    lg.runs,
                    r.runs_per_sec,
                    r.events_per_sec,
                    if i + 1 == lg.rates.len() { "" } else { "," }
                ));
            }
            s.push_str("  ],\n");
        }
        if let Some(auto) = &self.auto_queue {
            s.push_str(&format!(
                "  \"auto_queue_fingerprints_equal\": {},\n",
                auto.fingerprints_equal
            ));
            s.push_str("  \"auto_queue\": [\n");
            for (i, r) in auto.rates.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"impl\": \"{}\", \"runs\": {}, \"runs_per_sec\": {:.2}, \"events_per_sec\": {:.2}}}{}\n",
                    r.queue,
                    auto.runs,
                    r.runs_per_sec,
                    r.events_per_sec,
                    if i + 1 == auto.rates.len() { "" } else { "," }
                ));
            }
            s.push_str("  ],\n");
        }
        if let Some(c) = &self.cache {
            s.push_str(&format!(
                "  \"cache\": {{\"cold_runs\": {}, \"warm_runs\": {}, \"hits\": {}, \"misses\": {}, \
                 \"identical\": {}, \"cold_wall_us\": {}, \"warm_wall_us\": {}}},\n",
                c.cold_runs,
                c.warm_runs,
                c.hits,
                c.misses,
                c.identical,
                c.cold_wall_us,
                c.warm_wall_us,
            ));
        }
        if let Some(st) = &self.store {
            s.push_str(&format!(
                "  \"store\": {{\"cold_runs\": {}, \"cold_wall_us\": {}, \"wrote\": {}, \
                 \"open_wall_us\": {}, \"hydrated\": {}, \"warm_runs\": {}, \"warm_hits\": {}, \
                 \"warm_misses\": {}, \"warm_wall_us\": {}, \"identical\": {}, \"speedup\": {:.1}}},\n",
                st.cold_runs,
                st.cold_wall_us,
                st.wrote,
                st.open_wall_us,
                st.hydrated,
                st.warm_runs,
                st.warm_hits,
                st.warm_misses,
                st.warm_wall_us,
                st.identical,
                st.speedup,
            ));
        }
        if let Some(leg) = &self.adversary_leg {
            s.push_str(&format!(
                "  \"adversary_leg\": {{\"adversary\": \"{}\", \"drop_pct\": {}, \"dup_pct\": {}, \
                 \"runs\": {}, \"passes\": {}, \"events\": {}, \"dropped\": {}, \"duplicated\": {}, \
                 \"wall_us\": {}, \"runs_per_sec\": {:.2}, \"deterministic\": {}, \
                 \"none_identical\": {}, \"churn_catchup_live\": {}, \"churn_safety_only\": {}}},\n",
                leg.adversary,
                leg.drop_pct,
                leg.dup_pct,
                leg.runs,
                leg.passes,
                leg.events,
                leg.dropped,
                leg.duplicated,
                leg.wall_us,
                leg.runs_per_sec,
                leg.deterministic,
                leg.none_identical,
                leg.churn_catchup_live,
                leg.churn_safety_only,
            ));
            s.push_str("  \"adversary_cells\": [\n");
            for (i, c) in leg.cells.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"label\": \"{}\", \"runs\": {}, \"passes\": {}, \"events\": {}, \"msgs\": {}}}{}\n",
                    c.label,
                    c.runs,
                    c.passes,
                    c.events,
                    c.msgs,
                    if i + 1 == leg.cells.len() { "" } else { "," }
                ));
            }
            s.push_str("  ],\n");
        }
        if let Some(leg) = &self.topology_leg {
            s.push_str(&format!(
                "  \"topology_leg\": {{\"schedule\": \"{}\", \"runs\": {}, \"passes\": {}, \
                 \"events\": {}, \"severed\": {}, \"wall_us\": {}, \"runs_per_sec\": {:.2}, \
                 \"deterministic\": {}, \"none_identical\": {}, \"churn_partition_live\": {}, \
                 \"liveness_flip\": {}, \"negative_witness_seeds\": [{}]}},\n",
                leg.schedule,
                leg.runs,
                leg.passes,
                leg.events,
                leg.severed,
                leg.wall_us,
                leg.runs_per_sec,
                leg.deterministic,
                leg.none_identical,
                leg.churn_partition_live,
                leg.liveness_flip,
                leg.negative_witness_seeds
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ));
            s.push_str("  \"topology_cells\": [\n");
            for (i, c) in leg.cells.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"heal\": {}, \"runs\": {}, \"passes\": {}, \"min_deciders\": {}, \
                     \"events\": {}, \"severed\": {}}}{}\n",
                    c.heal,
                    c.runs,
                    c.passes,
                    c.min_deciders,
                    c.events,
                    c.severed,
                    if i + 1 == leg.cells.len() { "" } else { "," }
                ));
            }
            s.push_str("  ],\n");
        }
        if let Some(sc) = &self.scaling {
            s.push_str(&format!(
                "  \"scaling\": {{\"ns\": [{}], \"seeds_per_cell\": {}, \"points\": [\n",
                sc.ns
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                sc.seeds_per_cell,
            ));
            for (i, p) in sc.points.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"n\": {}, \"t\": {}, \"runs\": {}, \"passes\": {}, \"events\": {}, \
                     \"msgs\": {}, \"wall_us\": {}, \"events_per_sec\": {:.2}}}{}\n",
                    p.n,
                    p.t,
                    p.runs,
                    p.passes,
                    p.events,
                    p.msgs,
                    p.wall_us,
                    p.events_per_sec,
                    if i + 1 == sc.points.len() { "" } else { "," }
                ));
            }
            s.push_str("  ]},\n");
        }
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"runs\": {}, \"passes\": {}, \"events\": {}, \"msgs\": {}}}{}\n",
                c.label,
                c.runs,
                c.passes,
                c.events,
                c.msgs,
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_passes_and_serializes() {
        let rep = representative_sweep(2, Runner::parallel())
            .with_stream(streaming_sweep(32, Runner::parallel()))
            .with_compare(queue_comparison(1, Runner::parallel()));
        assert_eq!(rep.total_runs, rep.cells.len() as u64 * 2);
        assert_eq!(
            rep.total_passes, rep.total_runs,
            "grid cell failed its spec"
        );
        assert!(rep.total_events > 0);
        assert!(rep.wall_us >= 1);
        assert!(rep.wall_ms >= 1);
        assert_eq!(rep.queue, "auto", "the engine default drives the grid");
        let json = rep.to_json();
        assert!(json.contains("\"runs_per_sec\""));
        assert!(json.contains("\"wall_us\""));
        assert!(json.contains("\"stream\""));
        assert!(json.contains("\"queue\": \"auto\""));
        assert!(json.contains("\"queue_fingerprints_equal\": true"));
        assert!(json.contains("\"impl\": \"binary_heap\""));
        assert!(json.contains("n5_t2_k1_f0"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn auto_queue_leg_matches_and_serializes() {
        let auto = auto_queue_comparison(1, Runner::parallel());
        assert!(
            auto.fingerprints_equal,
            "Auto diverged from a concrete queue"
        );
        assert_eq!(auto.rates.len(), 3);
        assert_eq!(auto.rates[0].queue, "auto");
        let json = representative_sweep(1, Runner::sequential())
            .with_auto_queue(auto)
            .to_json();
        assert!(json.contains("\"auto_queue_fingerprints_equal\": true"));
        assert!(json.contains("\"auto_queue\": ["));
        assert!(json.contains("\"impl\": \"auto\""));
    }

    #[test]
    fn cache_leg_hits_and_stays_identical() {
        let leg = cache_leg(2, Runner::parallel());
        assert!(leg.identical, "warm summaries diverged from cold");
        assert_eq!(leg.cold_runs, leg.warm_runs);
        assert_eq!(
            leg.hits, leg.warm_runs,
            "every warm run must be served from the cache"
        );
        assert_eq!(leg.misses, leg.cold_runs);
        let json = representative_sweep(1, Runner::sequential())
            .with_cache_leg(leg)
            .to_json();
        assert!(json.contains("\"cache\": {"));
        assert!(json.contains("\"identical\": true"));
    }

    #[test]
    fn store_leg_resumes_all_hits_and_identical() {
        let dir = std::env::temp_dir().join(format!("fd-store-leg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let leg = store_leg(2, Runner::parallel(), &dir).unwrap();
        assert!(leg.identical, "warm summaries diverged from cold");
        assert_eq!(leg.cold_runs, leg.warm_runs);
        assert_eq!(leg.wrote, leg.cold_runs, "every cold run must persist");
        assert_eq!(leg.hydrated, leg.cold_runs, "every cell must hydrate");
        assert_eq!(leg.warm_hits, leg.warm_runs, "resume must be all hits");
        assert_eq!(leg.warm_misses, 0, "resume must recompute nothing");
        let json = representative_sweep(1, Runner::sequential())
            .with_store_leg(leg)
            .to_json();
        assert!(json.contains("\"store\": {"));
        assert!(json.contains("\"warm_misses\": 0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_digest_tracks_results_not_timing() {
        let a = representative_sweep(2, Runner::sequential());
        let b = representative_sweep(2, Runner::parallel());
        assert_eq!(
            a.grid_digest(),
            b.grid_digest(),
            "digest must ignore wall time and thread count"
        );
        let c = representative_sweep(1, Runner::sequential());
        assert_ne!(a.grid_digest(), c.grid_digest());
        let digest_line = format!("\"grid_digest\": \"{:016x}\"", a.grid_digest());
        assert!(a.to_json().contains(&digest_line));
    }

    #[test]
    fn main_grid_records_the_empty_adversary() {
        let rep = representative_sweep(1, Runner::sequential());
        assert_eq!(rep.adversary, "none");
        assert!(rep.to_json().contains("\"adversary\": \"none\""));
    }

    #[test]
    fn large_n_comparison_is_fingerprint_identical_up_to_128() {
        let lg = large_n_comparison(1, Runner::parallel());
        assert!(lg.fingerprints_equal, "queue impls diverged at large n");
        assert_eq!(lg.runs, 4);
        let json = representative_sweep(1, Runner::sequential())
            .with_large_n(lg)
            .to_json();
        assert!(json.contains("\"large_n_fingerprints_equal\": true"));
    }

    #[test]
    fn adversary_leg_gates_hold() {
        let leg = adversary_leg(1, Runner::parallel(), 10, 10);
        assert!(leg.deterministic, "adversary grid not deterministic");
        assert!(leg.none_identical, "None-differential failed");
        assert!(leg.churn_catchup_live, "churn+catch-up lost liveness");
        assert!(leg.churn_safety_only, "bare churn not safety-only");
        assert!(leg.dropped > 0, "drop rules never fired");
        assert!(leg.duplicated > 0, "dup rules never fired");
        assert_eq!(leg.adversary, "drop10+dup10");
        let json = representative_sweep(1, Runner::sequential())
            .with_adversary_leg(leg)
            .to_json();
        assert!(json.contains("\"adversary_leg\""));
        assert!(json.contains("\"churn_catchup_live\": true"));
        assert!(json.contains("adv_n65_t32_k2_f0"));
    }

    #[test]
    fn topology_leg_gates_hold_and_the_diagram_flips() {
        let leg = topology_leg(1, Runner::parallel());
        assert!(leg.deterministic, "partitioned grid not deterministic");
        assert!(leg.none_identical, "None-differential failed");
        assert!(leg.churn_partition_live, "partition-during-join wedged");
        assert!(leg.liveness_flip, "phase diagram never flipped");
        assert!(leg.severed > 0, "partition never severed a message");
        // Seed 0's Ω leader sits in the mainland, so the past-horizon
        // cell records it as an honest negative witness: liveness
        // rejected with the four mainland deciders in safe agreement.
        // Every mainland-leader seed at that heal qualifies, in seed
        // order, up to the cap.
        assert_eq!(leg.negative_witness_seeds.first(), Some(&0));
        assert!(
            leg.negative_witness_seeds.len() <= MAX_NEGATIVE_WITNESSES,
            "witness list must honor the cap"
        );
        assert!(
            leg.negative_witness_seeds.windows(2).all(|w| w[0] < w[1]),
            "witnesses must be recorded in seed order"
        );
        let last = leg.cells.last().unwrap();
        assert_eq!(last.passes, 0, "past-horizon heal must fail");
        assert_eq!(last.min_deciders, 4, "mainland decides alone");
        let json = representative_sweep(1, Runner::sequential())
            .with_topology_leg(leg)
            .to_json();
        assert!(json.contains("\"topology_leg\""));
        assert!(json.contains("\"liveness_flip\": true"));
        assert!(json.contains("\"negative_witness_seeds\": [0"));
        assert!(json.contains("{\"heal\": 200,"));
    }

    #[test]
    fn scaling_curve_measures_and_serializes() {
        let sc = scaling_curve(&[5, 9], 1, Runner::parallel());
        assert_eq!(sc.ns, vec![5, 9]);
        assert_eq!(sc.points.len(), 2);
        for p in &sc.points {
            assert_eq!(p.runs, 1);
            assert_eq!(p.passes, p.runs, "n={} failed its spec", p.n);
            assert!(p.events > 0);
            assert!(p.events_per_sec > 0.0);
            assert_eq!(p.t, (p.n - 1) / 2);
        }
        // More processes, more simulated work.
        assert!(sc.points[1].events > sc.points[0].events);
        let json = representative_sweep(1, Runner::sequential())
            .with_scaling(sc)
            .to_json();
        assert!(json.contains("\"scaling\": {\"ns\": [5, 9]"));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"n\": 9"));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PROCESSES")]
    fn scaling_curve_rejects_oversized_n() {
        scaling_curve(&[fd_sim::MAX_PROCESSES + 1], 1, Runner::sequential());
    }

    #[test]
    fn queue_comparison_fingerprints_match() {
        let cmp = queue_comparison(2, Runner::parallel());
        assert!(cmp.fingerprints_equal, "queue impls diverged");
        assert_eq!(cmp.rates.len(), 2);
        assert_eq!(cmp.runs, 24);
        assert!(cmp.rates.iter().all(|r| r.runs_per_sec > 0.0));
    }

    #[test]
    fn heap_grid_matches_calendar_grid() {
        let cal = representative_sweep_on(2, Runner::sequential(), QueueKind::Calendar);
        let heap = representative_sweep_on(2, Runner::sequential(), QueueKind::BinaryHeap);
        assert_eq!(cal.total_events, heap.total_events);
        assert_eq!(cal.total_passes, heap.total_passes);
        for (a, b) in cal.cells.iter().zip(&heap.cells) {
            assert_eq!(a.msgs, b.msgs, "cell {} diverged across queues", a.label);
        }
    }

    #[test]
    fn baseline_gate_accepts_and_rejects() {
        let rep = representative_sweep(1, Runner::sequential());
        // Against itself: always within the envelope.
        match check_baseline(&rep, &rep.to_json(), 30) {
            BaselineVerdict::Ok(_) => {}
            BaselineVerdict::Regressed(msg) => panic!("self-comparison regressed: {msg}"),
        }
        // Against an impossibly fast baseline: must reject.
        let fast = format!(
            "{{\n  \"threads\": 1,\n  \"runs_per_sec\": {:.2},\n  \"events_per_sec\": 1.0\n}}\n",
            rep.runs_per_sec * 1e6
        );
        assert!(matches!(
            check_baseline(&rep, &fast, 30),
            BaselineVerdict::Regressed(_)
        ));
        // A baseline without the field is skipped, not failed.
        assert!(matches!(
            check_baseline(&rep, "{}", 30),
            BaselineVerdict::Ok(_)
        ));
        // A baseline from a different thread count is not like-for-like:
        // skipped (thread scaling is not linear), never failed.
        let other_threads = format!(
            "{{\n  \"threads\": 4,\n  \"runs_per_sec\": {:.2}\n}}\n",
            rep.runs_per_sec * 1e6
        );
        match check_baseline(&rep, &other_threads, 30) {
            BaselineVerdict::Ok(msg) => assert!(msg.contains("skipping"), "{msg}"),
            BaselineVerdict::Regressed(msg) => panic!("thread mismatch must skip: {msg}"),
        }
    }

    #[test]
    fn rates_derive_from_the_recorded_duration() {
        let rep = representative_sweep(1, Runner::sequential());
        let secs = rep.wall_us as f64 / 1e6;
        assert!((rep.runs_per_sec - rep.total_runs as f64 / secs).abs() < 1e-6);
        assert!((rep.events_per_sec - rep.total_events as f64 / secs).abs() < 1e-3);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let a = representative_sweep(2, Runner::sequential());
        let b = representative_sweep(2, Runner::with_threads(4));
        assert_eq!(a.total_events, b.total_events);
        assert_eq!(a.total_passes, b.total_passes);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.msgs, cb.msgs, "cell {} diverged", ca.label);
        }
    }

    #[test]
    fn streaming_matches_eager_cell() {
        let spec = kset_config(5, 2, 2)
            .gst(Time(400))
            .crashes(CrashPlan::Random {
                f: 2,
                by: Time(500),
            });
        let eager = SweepSummary::of(&Runner::sequential().sweep(&KsetScenario, &spec, 0..24));
        let st = streaming_sweep(24, Runner::with_threads(4));
        assert_eq!(st.runs, eager.runs);
        assert_eq!(st.passes, eager.passes);
        assert_eq!(st.events, eager.total_events);
    }
}
