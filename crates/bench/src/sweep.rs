//! A representative grid sweep with machine-readable throughput output.
//!
//! [`representative_sweep`] drives the Figure 3 scenario over a grid of
//! `(n, t, k)` cells × crash plans × seeds through the work-stealing
//! [`Runner`], measures wall-clock throughput (runs/sec and simulator
//! events/sec), and renders everything as JSON (`BENCH_sweep.json`) for
//! tracking across commits. Cells are summarized via the streaming
//! [`Runner::sweep_summary`], so the sweep's memory footprint is
//! `O(threads)` full reports no matter how many seeds run;
//! [`streaming_sweep`] pushes that to ≥100k seeds on a single cell as an
//! explicit demonstration. No external JSON crate is available offline,
//! so the (flat, fully-controlled) document is rendered by hand.
//!
//! Timing is recorded in microseconds (`wall_us`, clamped to ≥ 1) and both
//! rates are derived from that same duration, so the JSON stays internally
//! consistent even on sub-millisecond CI smoke runs (where the old
//! `wall_ms` rounded to 0 while `runs_per_sec` was finite).

use fd_core::harness::kset_config;
use fd_core::KsetScenario;
use fd_detectors::scenario::{CrashPlan, Runner, ScenarioSpec};
use fd_sim::Time;
use std::time::Instant;

/// One grid cell of the sweep.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Cell label (`n5_t2_k1_f2`-style).
    pub label: String,
    /// Seeds run in this cell.
    pub runs: u64,
    /// Runs whose spec check passed.
    pub passes: u64,
    /// Simulator events processed in this cell.
    pub events: u64,
    /// Messages sent in this cell.
    pub msgs: u64,
}

/// Throughput of the ≥100k-seed single-cell streaming sweep.
#[derive(Clone, Debug)]
pub struct StreamResult {
    /// Label of the cell the stream ran (`n5_t2_k2_f2`-style).
    pub cell: String,
    /// Seeds streamed.
    pub runs: u64,
    /// Runs whose spec check passed.
    pub passes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Wall-clock duration, microseconds (≥ 1).
    pub wall_us: u64,
    /// Completed scenario runs per wall-clock second.
    pub runs_per_sec: f64,
}

/// The whole sweep: cells plus throughput.
#[derive(Clone, Debug)]
pub struct SweepBenchReport {
    /// Worker threads the runner used.
    pub threads: usize,
    /// Total runs across all cells.
    pub total_runs: u64,
    /// Total runs that passed.
    pub total_passes: u64,
    /// Total simulator events processed.
    pub total_events: u64,
    /// Wall-clock duration, microseconds (≥ 1; the source of truth both
    /// rates are derived from).
    pub wall_us: u64,
    /// Wall-clock duration, milliseconds (derived from `wall_us`, rounded
    /// up so it never reads 0 while the rates are finite).
    pub wall_ms: u64,
    /// Completed scenario runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Simulator events per wall-clock second.
    pub events_per_sec: f64,
    /// Per-cell results.
    pub cells: Vec<CellResult>,
    /// The streaming demonstration, when one was run.
    pub stream: Option<StreamResult>,
}

/// The grid the sweep covers: `(n, t)` scales × `k` × crash count.
fn grid(seeds_per_cell: u64) -> Vec<(String, ScenarioSpec, u64)> {
    let mut cells = Vec::new();
    for &(n, t) in &[(5usize, 2usize), (7, 3), (9, 4)] {
        for k in [1usize, 2] {
            for &f in &[0usize, t] {
                let label = format!("n{n}_t{t}_k{k}_f{f}");
                let spec = kset_config(n, t, k)
                    .gst(Time(400))
                    .crashes(CrashPlan::Random { f, by: Time(500) });
                cells.push((label, spec, seeds_per_cell));
            }
        }
    }
    cells
}

/// Runs the representative grid sweep and measures throughput. Each cell is
/// folded into a [`SweepSummary`] as its runs finish — no per-run report
/// outlives its cell's fold frontier.
pub fn representative_sweep(seeds_per_cell: u64, runner: Runner) -> SweepBenchReport {
    let cells = grid(seeds_per_cell);
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(cells.len());
    for (label, spec, seeds) in cells {
        let summary = runner.sweep_summary(&KsetScenario, &spec, 0..seeds);
        out.push(CellResult {
            label,
            runs: summary.runs,
            passes: summary.passes,
            events: summary.total_events,
            msgs: summary.total_msgs,
        });
    }
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    let total_runs: u64 = out.iter().map(|c| c.runs).sum();
    let total_passes: u64 = out.iter().map(|c| c.passes).sum();
    let total_events: u64 = out.iter().map(|c| c.events).sum();
    let secs = wall_us as f64 / 1e6;
    SweepBenchReport {
        threads: runner.threads(),
        total_runs,
        total_passes,
        total_events,
        wall_us,
        wall_ms: wall_us.div_ceil(1000),
        runs_per_sec: total_runs as f64 / secs,
        events_per_sec: total_events as f64 / secs,
        cells: out,
        stream: None,
    }
}

/// Streams `seeds` runs of one representative crashy cell (`n5_t2_k2_f2`)
/// through [`Runner::sweep_fold`]. Memory stays `O(threads)` full reports
/// regardless of `seeds`, which is the point: this is the million-seed mode
/// the eager sweep cannot afford.
pub fn streaming_sweep(seeds: u64, runner: Runner) -> StreamResult {
    let (n, t, k, f) = (5, 2, 2, 2);
    let spec = kset_config(n, t, k)
        .gst(Time(400))
        .crashes(CrashPlan::Random { f, by: Time(500) });
    let t0 = Instant::now();
    let summary = runner.sweep_summary(&KsetScenario, &spec, 0..seeds);
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    StreamResult {
        cell: format!("n{n}_t{t}_k{k}_f{f}"),
        runs: summary.runs,
        passes: summary.passes,
        events: summary.total_events,
        wall_us,
        runs_per_sec: summary.runs as f64 / (wall_us as f64 / 1e6),
    }
}

impl SweepBenchReport {
    /// Attaches a streaming demonstration to the report (builder style).
    pub fn with_stream(mut self, stream: StreamResult) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"grid_sweep\",\n");
        s.push_str("  \"scenario\": \"kset_omega\",\n");
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        s.push_str(&format!("  \"total_passes\": {},\n", self.total_passes));
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events));
        s.push_str(&format!("  \"wall_us\": {},\n", self.wall_us));
        s.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        s.push_str(&format!("  \"runs_per_sec\": {:.2},\n", self.runs_per_sec));
        s.push_str(&format!(
            "  \"events_per_sec\": {:.2},\n",
            self.events_per_sec
        ));
        if let Some(st) = &self.stream {
            s.push_str(&format!(
                "  \"stream\": {{\"cell\": \"{}\", \"runs\": {}, \"passes\": {}, \"events\": {}, \"wall_us\": {}, \"runs_per_sec\": {:.2}}},\n",
                st.cell, st.runs, st.passes, st.events, st.wall_us, st.runs_per_sec
            ));
        }
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"runs\": {}, \"passes\": {}, \"events\": {}, \"msgs\": {}}}{}\n",
                c.label,
                c.runs,
                c.passes,
                c.events,
                c.msgs,
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_detectors::scenario::SweepSummary;

    #[test]
    fn sweep_passes_and_serializes() {
        let rep = representative_sweep(2, Runner::parallel())
            .with_stream(streaming_sweep(32, Runner::parallel()));
        assert_eq!(rep.total_runs, rep.cells.len() as u64 * 2);
        assert_eq!(
            rep.total_passes, rep.total_runs,
            "grid cell failed its spec"
        );
        assert!(rep.total_events > 0);
        assert!(rep.wall_us >= 1);
        assert!(rep.wall_ms >= 1);
        let json = rep.to_json();
        assert!(json.contains("\"runs_per_sec\""));
        assert!(json.contains("\"wall_us\""));
        assert!(json.contains("\"stream\""));
        assert!(json.contains("n5_t2_k1_f0"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn rates_derive_from_the_recorded_duration() {
        let rep = representative_sweep(1, Runner::sequential());
        let secs = rep.wall_us as f64 / 1e6;
        assert!((rep.runs_per_sec - rep.total_runs as f64 / secs).abs() < 1e-6);
        assert!((rep.events_per_sec - rep.total_events as f64 / secs).abs() < 1e-3);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let a = representative_sweep(2, Runner::sequential());
        let b = representative_sweep(2, Runner::with_threads(4));
        assert_eq!(a.total_events, b.total_events);
        assert_eq!(a.total_passes, b.total_passes);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.msgs, cb.msgs, "cell {} diverged", ca.label);
        }
    }

    #[test]
    fn streaming_matches_eager_cell() {
        let spec = kset_config(5, 2, 2)
            .gst(Time(400))
            .crashes(CrashPlan::Random {
                f: 2,
                by: Time(500),
            });
        let eager = SweepSummary::of(&Runner::sequential().sweep(&KsetScenario, &spec, 0..24));
        let st = streaming_sweep(24, Runner::with_threads(4));
        assert_eq!(st.runs, eager.runs);
        assert_eq!(st.passes, eager.passes);
        assert_eq!(st.events, eager.total_events);
    }
}
