//! Differential suite: the bitset-slab round automata are bit-identical
//! to the retained `HashMap`-of-`Vec` reference implementations.
//!
//! [`KsetOmega`]/[`ConsensusMr`] (slabs, `crate::rounds`) and
//! [`KsetOmegaRef`]/[`ConsensusMrRef`] (`crate::reference`, the pre-slab
//! code verbatim) run through the *full* scenario engine — materialized
//! failure patterns, oracles, delay sampling, message adversary, decision
//! checking — and must produce equal [`ScenarioReport::fingerprint`]s:
//! same event counts, same messages, same decisions, same counters, same
//! history samples. The grid spans process counts up to the new n = 128
//! tier, both queue disciplines, sequential and 4-thread runners, and
//! armed/unarmed adversaries.

#![cfg(feature = "vec-reference")]

use fd_core::{ConsensusReferenceScenario, ConsensusScenario, KsetReferenceScenario, KsetScenario};
use fd_detectors::scenario::{Runner, Scenario, ScenarioSpec};
use fd_sim::{MessageAdversary, MessageRule, QueueKind, Time};

/// The conventional spec at size `n`: `k = z = 2`, `t` maximal (`< n/2`).
fn base(n: usize) -> ScenarioSpec {
    let t = (n - 1) / 2;
    ScenarioSpec::new(n, t)
        .kz(2)
        .gst(Time(400))
        .max_time(Time(30_000))
}

/// The standard armed adversary of the engine tests: early drops,
/// duplicates and bounded corruption, all windowed before GST so runs
/// still terminate.
fn armed() -> MessageAdversary {
    MessageAdversary::Rules(vec![
        MessageRule::drop(10).window(Time::ZERO, Time(400)),
        MessageRule::duplicate(10).window(Time::ZERO, Time(400)),
        MessageRule::corrupt(5, 3).window(Time::ZERO, Time(400)),
    ])
}

fn assert_identical(
    prod: &dyn Scenario,
    reference: &dyn Scenario,
    spec: &ScenarioSpec,
    what: &str,
) {
    let p = prod.run(spec);
    let r = reference.run(spec);
    assert_eq!(
        p.fingerprint(),
        r.fingerprint(),
        "{what}: slab diverged from vec reference (n={} seed={})",
        spec.n,
        spec.seed
    );
    // The differential is only meaningful if the runs go somewhere.
    assert!(p.metrics.msgs_sent > 0, "{what}: empty run");
}

/// Tentpole differential: n ∈ {5, 33, 128} × both queues × adversary
/// off/on, full scenario fingerprints.
#[test]
fn kset_slab_matches_reference_across_n_queues_adversary() {
    for n in [5usize, 33, 128] {
        let seeds = if n >= 128 { 1 } else { 2 };
        for queue in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            for adv in [false, true] {
                for seed in 0..seeds {
                    let mut spec = base(n).seed(seed).queue(queue);
                    if adv {
                        spec = spec.adversary(armed());
                    }
                    assert_identical(
                        &KsetScenario,
                        &KsetReferenceScenario,
                        &spec,
                        &format!("kset queue={queue:?} adv={adv}"),
                    );
                }
            }
        }
    }
}

/// The MR `◇S` baseline gets the same treatment (its echo adoption is
/// arrival-order-sensitive, the subtlest of the slab aggregates).
#[test]
fn consensus_slab_matches_reference() {
    for n in [5usize, 33] {
        for queue in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            for adv in [false, true] {
                for seed in 0..2 {
                    let mut spec = base(n).seed(seed).queue(queue);
                    if adv {
                        spec = spec.adversary(armed());
                    }
                    assert_identical(
                        &ConsensusScenario,
                        &ConsensusReferenceScenario,
                        &spec,
                        &format!("consensus queue={queue:?} adv={adv}"),
                    );
                }
            }
        }
    }
}

/// Runner dimension: sweeps of both implementations agree seed-for-seed
/// under the sequential (1-thread) and the 4-thread runner alike.
#[test]
fn kset_slab_matches_reference_under_1_and_4_thread_runners() {
    let spec = base(33).adversary(armed());
    for runner in [Runner::with_threads(1), Runner::with_threads(4)] {
        let prod = runner.sweep(&KsetScenario, &spec, 0..4);
        let reference = runner.sweep(&KsetReferenceScenario, &spec, 0..4);
        assert_eq!(prod.len(), reference.len());
        for (p, r) in prod.iter().zip(reference.iter()) {
            assert_eq!(
                p.fingerprint(),
                r.fingerprint(),
                "seed {}: slab diverged from vec reference under runner",
                p.spec.seed
            );
        }
    }
}
