//! Fixed-capacity round slabs: the allocation-free quorum automata that
//! back [`crate::kset_omega::KsetOmega`] and
//! [`crate::consensus_mr::ConsensusMr`] at large `n`.
//!
//! The original round state was `HashMap<u32, Vec<(ProcessId, …)>>` — one
//! heap-allocated vector per round per process, scanned linearly for
//! duplicate-sender checks and re-aggregated from scratch on every guard
//! re-evaluation. At n = 1024 that is O(n) allocation churn and O(n²)
//! scanning per round. The slabs invert the layout:
//!
//! * **sender tracking** is a [`PSet`] bitset — duplicate detection and
//!   quorum counting are word ops and popcounts;
//! * **aggregates** (`⊥` counts, running minima, first-wins values,
//!   leader-set tallies) are maintained incrementally at insert time, so
//!   the round guards read O(1) state instead of rescanning message lists;
//! * **storage** is recycled through [`RoundWindow`]: when a process
//!   enters round `r` it retires every slab below `r` into a pool, and
//!   future rounds draw from that pool — steady-state progress allocates
//!   nothing.
//!
//! Every aggregate is chosen to be *observationally identical* to the old
//! list scan (first-wins per sender, minimum over non-`⊥`, the unique
//! `2c > n` majority). The `vec-reference` feature keeps the original
//! HashMap automata alive in [`crate::reference`], and
//! `tests/slab_reference.rs` pins full scenario fingerprints of both
//! implementations against each other.

use fd_sim::{PSet, ProcessId};

/// A per-round state block that can be recycled by a [`RoundWindow`].
pub trait RoundSlab {
    /// Clears the slab back to its freshly-created state, retaining any
    /// heap capacity (buffers are reused, not freed).
    fn reset(&mut self);
}

/// A sliding window of per-round slabs with pooled recycling.
///
/// Rounds only move forward: the automaton reads the slab of its *current*
/// round, buffers slabs for *future* rounds (messages can arrive early),
/// and never looks at past rounds again. [`RoundWindow::retire_below`]
/// exploits that — retired slabs go to a free pool and are handed back out
/// by [`RoundWindow::entry`], so a long run touches a bounded set of
/// allocations no matter how many rounds it takes.
#[derive(Clone, Debug, Default)]
pub struct RoundWindow<S> {
    /// Live (round, slab) pairs — current and future rounds, unordered.
    active: Vec<(u32, S)>,
    /// Retired slabs awaiting reuse.
    pool: Vec<S>,
}

impl<S: RoundSlab> RoundWindow<S> {
    /// An empty window.
    pub fn new() -> Self {
        RoundWindow {
            active: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// The slab for round `r`, created (from the pool if possible, else by
    /// `make`) if absent.
    pub fn entry(&mut self, r: u32, make: impl FnOnce() -> S) -> &mut S {
        if let Some(i) = self.active.iter().position(|(rr, _)| *rr == r) {
            return &mut self.active[i].1;
        }
        let slab = self.pool.pop().unwrap_or_else(make);
        self.active.push((r, slab));
        &mut self.active.last_mut().expect("just pushed").1
    }

    /// The slab for round `r`, if one exists.
    pub fn get(&self, r: u32) -> Option<&S> {
        self.active.iter().find(|(rr, _)| *rr == r).map(|(_, s)| s)
    }

    /// Retires every slab for a round `< r` into the pool.
    pub fn retire_below(&mut self, r: u32) {
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].0 < r {
                let (_, mut s) = self.active.swap_remove(i);
                s.reset();
                self.pool.push(s);
            } else {
                i += 1;
            }
        }
    }

    /// Number of live (current + future) rounds.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether no round is live.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }
}

/// Round state for Figure 3 **Phase 1**: `PHASE1(r, L, est)` messages.
///
/// Replaces `Vec<(ProcessId, PSet, u64)>`. Estimates are stored in a
/// per-process array (first message from a sender wins, duplicates are
/// ignored — exactly the old linear dedup), leader sets are tallied as
/// they arrive, and the line 05–08 guards become popcounts and word ops.
#[derive(Clone, Debug)]
pub struct Phase1Slab {
    /// Who has been heard from this round.
    senders: PSet,
    /// `ests[p]` = the estimate of sender `p`'s first message. Only indices
    /// in `senders` are meaningful; stale values from a recycled slab are
    /// never read.
    ests: Vec<u64>,
    /// Tally of distinct leader sets seen (insertion order, tiny in
    /// practice: correct processes under one oracle mostly agree).
    lsets: Vec<(PSet, u32)>,
}

impl Phase1Slab {
    /// A slab for an `n`-process run.
    pub fn new(n: usize) -> Self {
        Phase1Slab {
            senders: PSet::EMPTY,
            ests: vec![0; n],
            lsets: Vec::new(),
        }
    }

    /// Records `PHASE1(leaders, est)` from `from`; first message per
    /// sender wins.
    pub fn insert(&mut self, from: ProcessId, leaders: PSet, est: u64) {
        if self.senders.contains(from) {
            return;
        }
        self.senders.insert(from);
        self.ests[from.0] = est;
        match self.lsets.iter_mut().find(|(l, _)| *l == leaders) {
            Some((_, c)) => *c += 1,
            None => self.lsets.push((leaders, 1)),
        }
    }

    /// Distinct senders heard this round (the line 05 quorum count).
    pub fn count(&self) -> usize {
        self.senders.len()
    }

    /// Whether any sender is a member of `li` (the line 06 guard).
    pub fn heard_from(&self, li: PSet) -> bool {
        !self.senders.is_disjoint(li)
    }

    /// The leader set reported by a strict majority of senders, if any.
    /// At most one set can satisfy `2c > n`, so the answer is unique.
    pub fn majority(&self, n: usize) -> Option<PSet> {
        self.lsets
            .iter()
            .find(|&&(_, c)| 2 * c as usize > n)
            .map(|&(l, _)| l)
    }

    /// The estimate of the smallest-id sender inside `l` (the line 07
    /// `v_L` choice: deterministic, matches the old
    /// `min_by_key(sender)` scan because estimates are first-wins).
    pub fn min_member_est(&self, l: PSet) -> Option<u64> {
        (self.senders & l).min().map(|p| self.ests[p.0])
    }
}

impl RoundSlab for Phase1Slab {
    fn reset(&mut self) {
        self.senders = PSet::EMPTY;
        self.lsets.clear();
        // `ests` is left dirty on purpose: only indices in `senders` are
        // ever read, and those are overwritten at insert time.
    }
}

/// Round state for Figure 3 **Phase 2**: `PHASE2(r, aux)` messages.
///
/// Replaces `Vec<(ProcessId, Option<u64>)>`. The line 13 adoption is a
/// running minimum over non-`⊥` values and the line 14 decision guard is
/// a `⊥` counter — no list, no rescan.
#[derive(Clone, Copy, Debug, Default)]
pub struct Phase2Slab {
    senders: PSet,
    /// How many senders reported `⊥`.
    bots: u32,
    /// Minimum non-`⊥` value seen.
    min_val: Option<u64>,
}

impl Phase2Slab {
    /// Records `PHASE2(aux)` from `from`; first message per sender wins.
    pub fn insert(&mut self, from: ProcessId, aux: Option<u64>) {
        if self.senders.contains(from) {
            return;
        }
        self.senders.insert(from);
        match aux {
            None => self.bots += 1,
            Some(v) => {
                self.min_val = Some(match self.min_val {
                    Some(m) => m.min(v),
                    None => v,
                })
            }
        }
    }

    /// Distinct senders heard this round (the line 11 quorum count).
    pub fn count(&self) -> usize {
        self.senders.len()
    }

    /// The smallest non-`⊥` value received (line 13).
    pub fn min_val(&self) -> Option<u64> {
        self.min_val
    }

    /// Whether every received value was non-`⊥` (line 14).
    pub fn all_non_bot(&self) -> bool {
        self.bots == 0
    }
}

impl RoundSlab for Phase2Slab {
    fn reset(&mut self) {
        *self = Phase2Slab::default();
    }
}

/// Round state for the MR baseline's **coordinator estimate**: first
/// `COORD(r, est)` wins (the old `coords.entry(r).or_insert(est)`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordSlab {
    est: Option<u64>,
}

impl CoordSlab {
    /// Records the coordinator's estimate; the first one wins.
    pub fn record(&mut self, est: u64) {
        if self.est.is_none() {
            self.est = Some(est);
        }
    }

    /// The recorded estimate, if any.
    pub fn est(&self) -> Option<u64> {
        self.est
    }
}

impl RoundSlab for CoordSlab {
    fn reset(&mut self) {
        self.est = None;
    }
}

/// Round state for the MR baseline's **Phase 2 echoes**.
///
/// Replaces `Vec<(ProcessId, Option<u64>)>`. The baseline adopts the
/// *first* non-`⊥` echo in arrival order, so the aggregate is a
/// set-once value plus a `⊥` counter.
#[derive(Clone, Copy, Debug, Default)]
pub struct EchoSlab {
    senders: PSet,
    /// How many senders echoed `⊥`.
    bots: u32,
    /// The first non-`⊥` echo in arrival order.
    first_val: Option<u64>,
}

impl EchoSlab {
    /// Records `ECHO(aux)` from `from`; first message per sender wins.
    pub fn insert(&mut self, from: ProcessId, aux: Option<u64>) {
        if self.senders.contains(from) {
            return;
        }
        self.senders.insert(from);
        match aux {
            None => self.bots += 1,
            Some(v) => {
                if self.first_val.is_none() {
                    self.first_val = Some(v);
                }
            }
        }
    }

    /// Distinct senders heard this round.
    pub fn count(&self) -> usize {
        self.senders.len()
    }

    /// The first non-`⊥` echo received, if any.
    pub fn first_val(&self) -> Option<u64> {
        self.first_val
    }

    /// Whether every echo was non-`⊥` (the decision guard).
    pub fn all_non_bot(&self) -> bool {
        self.bots == 0
    }
}

impl RoundSlab for EchoSlab {
    fn reset(&mut self) {
        *self = EchoSlab::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn window_recycles_retired_slabs() {
        let mut w: RoundWindow<Phase2Slab> = RoundWindow::new();
        w.entry(1, Phase2Slab::default).insert(pid(0), Some(7));
        w.entry(2, Phase2Slab::default).insert(pid(1), None);
        assert_eq!(w.len(), 2);
        w.retire_below(2);
        assert_eq!(w.len(), 1);
        // Round 3 reuses round 1's storage, reset.
        let s = w.entry(3, Phase2Slab::default);
        assert_eq!(s.count(), 0);
        assert_eq!(s.min_val(), None);
        assert!(s.all_non_bot());
        // Round 2's slab is untouched.
        assert_eq!(w.get(2).unwrap().count(), 1);
        assert!(w.get(1).is_none());
    }

    #[test]
    fn window_keeps_future_rounds() {
        let mut w: RoundWindow<CoordSlab> = RoundWindow::new();
        w.entry(5, CoordSlab::default).record(42);
        w.retire_below(3);
        assert_eq!(w.get(5).unwrap().est(), Some(42));
    }

    #[test]
    fn phase1_first_message_per_sender_wins() {
        let mut s = Phase1Slab::new(8);
        let l = PSet::from_bits(0b11);
        s.insert(pid(3), l, 30);
        s.insert(pid(3), l, 99); // duplicate: ignored
        s.insert(pid(1), l, 10);
        assert_eq!(s.count(), 2);
        assert_eq!(s.min_member_est(PSet::full(8)), Some(10));
        assert_eq!(s.min_member_est(PSet::from_bits(0b1000)), Some(30));
    }

    #[test]
    fn phase1_majority_is_unique_two_c_gt_n() {
        let mut s = Phase1Slab::new(5);
        let la = PSet::from_bits(0b1);
        let lb = PSet::from_bits(0b10);
        s.insert(pid(0), la, 1);
        s.insert(pid(1), la, 2);
        s.insert(pid(2), lb, 3);
        assert_eq!(s.majority(5), None, "2 of 5 is not a majority");
        s.insert(pid(3), la, 4);
        assert_eq!(s.majority(5), Some(la));
    }

    #[test]
    fn phase1_heard_from_is_membership_intersection() {
        let mut s = Phase1Slab::new(4);
        s.insert(pid(2), PSet::EMPTY, 5);
        assert!(s.heard_from(PSet::from_bits(0b100)));
        assert!(!s.heard_from(PSet::from_bits(0b011)));
    }

    #[test]
    fn phase2_tracks_min_and_bots() {
        let mut s = Phase2Slab::default();
        s.insert(pid(0), Some(9));
        s.insert(pid(1), Some(4));
        s.insert(pid(1), Some(1)); // duplicate: ignored
        assert_eq!(s.min_val(), Some(4));
        assert!(s.all_non_bot());
        s.insert(pid(2), None);
        assert!(!s.all_non_bot());
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn echo_keeps_first_non_bot_in_arrival_order() {
        let mut s = EchoSlab::default();
        s.insert(pid(4), None);
        s.insert(pid(2), Some(20));
        s.insert(pid(0), Some(10));
        assert_eq!(s.first_val(), Some(20), "arrival order, not sender order");
        assert!(!s.all_non_bot());
    }

    #[test]
    fn coord_first_record_wins() {
        let mut c = CoordSlab::default();
        assert_eq!(c.est(), None);
        c.record(8);
        c.record(9);
        assert_eq!(c.est(), Some(8));
    }
}
