//! [`Scenario`] implementations for the core algorithms: Figure 3 `k`-set
//! agreement, the MR `◇S` consensus baseline, and repeated instances.
//!
//! These are the *only* places in the crate that assemble a simulation for
//! their algorithm; every other entry point (the [`crate::harness`]
//! adapters, the bench experiments, the examples) goes through them.

use crate::consensus_mr::ConsensusMr;
use crate::kset_omega::KsetOmega;
use crate::repeated::{run_repeated_spec, RepeatedReport};
use crate::spec;
use fd_detectors::scenario::{
    churn_envelope, default_proposals, run_to_decision, salt, ChurnGuarantee, CrashPlan, Flavour,
    OracleVisitor, Scenario, ScenarioReport, ScenarioSpec,
};
use fd_sim::{FailurePattern, OracleSuite};

/// The Figure 3 `Ω_z`-based `k`-set agreement algorithm, run under the
/// spec's oracle choice (an adversarial `Ω_z` by default; set `z > k` to
/// reproduce the Theorem 5 violation).
#[derive(Clone, Copy, Debug, Default)]
pub struct KsetScenario;

impl KsetScenario {
    /// The conventional spec for `k`-set agreement: `k = z`, `Ω_z` oracle.
    pub fn spec(n: usize, t: usize, k: usize) -> ScenarioSpec {
        ScenarioSpec::new(n, t).kz(k)
    }
}

impl Scenario for KsetScenario {
    fn name(&self) -> &'static str {
        "kset_omega"
    }

    fn run(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let fp = spec.materialize();
        struct RunKset<'a> {
            spec: &'a ScenarioSpec,
            fp: FailurePattern,
        }
        impl OracleVisitor for RunKset<'_> {
            type Out = ScenarioReport;
            fn visit<O: OracleSuite + 'static>(self, oracle: O) -> ScenarioReport {
                run_kset_with(self.spec, self.fp, oracle)
            }
        }
        let v = RunKset {
            spec,
            fp: fp.clone(),
        };
        spec.with_oracle(&fp, v)
    }
}

/// Runs the Figure 3 algorithm under a caller-supplied oracle — the hook
/// the lower-bound witnesses use to inject hand-crafted adversarial
/// detectors (and delay rules, via `spec.rules`).
///
/// Churn runs are scored by the engine's
/// [`churn_envelope`] at [`ChurnGuarantee::SafetyOnly`]: the bare Figure 3
/// algorithm has no catch-up for late joiners, so it honestly claims
/// safety and nothing more. The catch-up variant that upgrades churn to
/// liveness lives in the facade (`fd_grid::churn`), stacked from this
/// algorithm plus `fd_transforms::catch_up`.
pub fn run_kset_with(
    spec: &ScenarioSpec,
    fp: FailurePattern,
    oracle: impl OracleSuite,
) -> ScenarioReport {
    let proposals = default_proposals(spec.n);
    let trace = run_to_decision(spec, &fp, |p| KsetOmega::new(proposals[p.0]), oracle);
    let check = if matches!(spec.crashes, CrashPlan::Churn { .. }) {
        churn_envelope(&trace, &fp, spec.k, &proposals, ChurnGuarantee::SafetyOnly)
    } else {
        spec::kset_spec(&trace, &fp, spec.k, &proposals)
    };
    ScenarioReport::new("kset_omega", spec, fp, trace, check)
}

/// The Mostéfaoui–Raynal `◇S` quorum-based consensus baseline. Ignores the
/// spec's oracle choice: the algorithm is defined for `◇S = ◇S_n` only.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsensusScenario;

impl Scenario for ConsensusScenario {
    fn name(&self) -> &'static str {
        "consensus_mr"
    }

    fn run(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let fp = spec.materialize();
        let proposals = default_proposals(spec.n);
        let oracle = spec.sx_oracle(&fp, spec.n, Flavour::Eventual, salt::DIAMOND_S);
        let trace = run_to_decision(spec, &fp, |p| ConsensusMr::new(proposals[p.0]), oracle);
        let check = spec::kset_spec(&trace, &fp, 1, &proposals);
        ScenarioReport::new(self.name(), spec, fp, trace, check)
    }
}

/// `m` successive `k`-set agreement instances (the zero-degradation
/// experiment made longitudinal). The combined per-instance specification
/// becomes the report's check; use [`run_repeated_spec`] directly when the
/// per-instance statistics are needed.
#[derive(Clone, Copy, Debug)]
pub struct RepeatedScenario {
    /// Number of successive instances.
    pub instances: u32,
}

impl Scenario for RepeatedScenario {
    fn name(&self) -> &'static str {
        "repeated_kset"
    }

    fn cache_tag(&self) -> String {
        // The instance count is configuration outside the spec.
        format!("repeated_kset/m={}", self.instances)
    }

    fn run(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let fp = spec.materialize();
        struct RunRepeated<'a> {
            spec: &'a ScenarioSpec,
            instances: u32,
            fp: FailurePattern,
        }
        impl OracleVisitor for RunRepeated<'_> {
            type Out = RepeatedReport;
            fn visit<O: OracleSuite + 'static>(self, oracle: O) -> RepeatedReport {
                run_repeated_spec(self.spec, self.instances, self.fp, oracle)
            }
        }
        let v = RunRepeated {
            spec,
            instances: self.instances,
            fp: fp.clone(),
        };
        let rep = spec.with_oracle(&fp, v);
        ScenarioReport::new(self.name(), spec, rep.fp, rep.trace, rep.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_detectors::scenario::{CrashPlan, Runner};
    use fd_sim::Time;

    #[test]
    fn kset_scenario_passes_grid_corner() {
        let spec = KsetScenario::spec(5, 2, 2)
            .seed(3)
            .crashes(CrashPlan::Random {
                f: 2,
                by: Time(500),
            });
        let rep = KsetScenario.run(&spec);
        assert!(rep.check.ok, "{}", rep.check);
        assert!(rep.metrics.decided_values.len() <= 2);
        assert!(rep.metrics.msgs_sent > 0);
    }

    #[test]
    fn runner_sweep_drives_all_three_scenarios() {
        let spec = KsetScenario::spec(5, 2, 1).gst(Time(400));
        let runner = Runner::sequential();
        for sc in [
            &KsetScenario as &dyn Scenario,
            &ConsensusScenario,
            &RepeatedScenario { instances: 2 },
        ] {
            let reports = runner.sweep(sc, &spec, 0..3);
            assert!(
                reports.iter().all(|r| r.check.ok),
                "{} failed: {:?}",
                sc.name(),
                reports
                    .iter()
                    .map(|r| r.check.to_string())
                    .collect::<Vec<_>>()
            );
        }
    }
}
