//! The `Ω_k`-based `k`-set agreement algorithm — **paper Figure 3**.
//!
//! This is the paper's §3 contribution: a round-based algorithm in which
//! processes use an underlying `Ω_z` failure detector (`z ≤ k`) to converge
//! on at most `k` distinct decisions, assuming `t < n/2`. Each round has two
//! phases:
//!
//! * **Phase 1** (lines 03–08): read `trusted_i` into `L_i`, broadcast
//!   `PHASE1(r, L_i, est_i)`, wait for `n−t` such messages *and* for either
//!   a message from a member of `L_i` or a change of `trusted_i`; adopt the
//!   estimate `v_L` of a majority-supported leader set `L` into `aux_i`, or
//!   `⊥` if no such value is visible.
//! * **Phase 2** (lines 10–14): broadcast `PHASE2(r, aux_i)`, wait for `n−t`
//!   of them; adopt any non-`⊥` value as the new estimate; if *no* `⊥` was
//!   received, reliably broadcast `DECISION(est_i)`.
//!
//! A process decides when it R-delivers a `DECISION` (task T2), which also
//! disseminates the value so every correct process decides (termination).
//!
//! Properties proved in the paper and checked mechanically here
//! (`crate::spec`): validity, at most `k` distinct decisions
//! (for `z ≤ k`), and termination. The algorithm is *oracle-efficient* and
//! *zero-degrading* (§3.2): with a perfect `Ω_k` and only initial crashes
//! it decides in a single round.

use crate::rounds::{Phase1Slab, Phase2Slab, RoundWindow};
use fd_sim::{
    slot, Automaton, Corruptible, Ctx, FdValue, OracleSuite, PSet, ProcessId, SplitMix64,
};

/// Message alphabet of the Figure 3 algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KsetMsg {
    /// `PHASE1(r_i, L_i, est_i)` — paper line 04.
    Phase1 {
        /// Round number.
        r: u32,
        /// The sender's leader set `L_i` at round start.
        leaders: PSet,
        /// The sender's current estimate.
        est: u64,
    },
    /// `PHASE2(r_i, aux_i)` — paper line 10; `None` encodes `⊥`.
    Phase2 {
        /// Round number.
        r: u32,
        /// The sender's `aux_i` (`None` = `⊥`).
        aux: Option<u64>,
    },
    /// `DECISION(est)` — paper line 14, reliably broadcast.
    Decision {
        /// The decided value.
        v: u64,
    },
}

impl Corruptible for KsetMsg {
    /// The message adversary may move the *estimates* in flight (bounded):
    /// `PHASE1.est` and any non-`⊥` `PHASE2.aux`. Leader sets and round
    /// numbers stay intact (structured corruption would make messages
    /// undecodable rather than wrong, which the drop rule already models),
    /// and `DECISION`s travel by reliable broadcast, which the adversary
    /// cannot touch.
    fn corrupt(&mut self, bound: u64, rng: &mut SplitMix64) -> bool {
        match self {
            KsetMsg::Phase1 { est, .. } => fd_sim::corrupt_u64(est, bound, rng),
            KsetMsg::Phase2 { aux: Some(v), .. } => fd_sim::corrupt_u64(v, bound, rng),
            _ => false,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Phase1,
    Phase2,
    Done,
}

/// Where the algorithm reads its leader sets from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LeaderInput {
    /// Read `trusted_i` from the run's oracle bundle (the normal mode).
    #[default]
    Oracle,
    /// Use an externally supplied set, updated by an enclosing automaton —
    /// this is how the algorithm is stacked on top of the two-wheels
    /// construction (see the `fd-grid` pipeline).
    External,
}

/// One process of the `Ω_k`-based `k`-set agreement algorithm (Figure 3).
///
/// Round state lives in the bitset slabs of [`crate::rounds`]: sender
/// dedup and the `n−t` quorum counts are popcounts, the line 07/13 value
/// choices are running aggregates, and slabs of finished rounds are
/// recycled — steady-state progress allocates nothing, independent of `n`.
/// The `vec-reference` feature retains the original `HashMap`-of-`Vec`
/// implementation ([`crate::reference::KsetOmegaRef`]) and the
/// differential suite pins both bit-identical.
///
/// # Examples
///
/// See [`crate::harness::run_kset_omega`] for the assembled experiment.
#[derive(Clone, Debug)]
pub struct KsetOmega {
    est: u64,
    r: u32,
    li: PSet,
    stage: Stage,
    aux: Option<u64>,
    p1: RoundWindow<Phase1Slab>,
    p2: RoundWindow<Phase2Slab>,
    decided: bool,
    leader_input: LeaderInput,
    external_leaders: PSet,
}

impl KsetOmega {
    /// Creates the process with its proposal `v_i`.
    pub fn new(proposal: u64) -> Self {
        KsetOmega {
            est: proposal,
            r: 0,
            li: PSet::EMPTY,
            stage: Stage::Done, // set properly in on_start
            aux: None,
            p1: RoundWindow::new(),
            p2: RoundWindow::new(),
            decided: false,
            leader_input: LeaderInput::Oracle,
            external_leaders: PSet::EMPTY,
        }
    }

    /// Switches the leader source to [`LeaderInput::External`].
    pub fn with_external_leaders(mut self) -> Self {
        self.leader_input = LeaderInput::External;
        self
    }

    /// Updates the externally supplied leader set (external mode only).
    pub fn set_external_leaders(&mut self, l: PSet) {
        self.external_leaders = l;
    }

    /// Whether this process has decided.
    pub fn has_decided(&self) -> bool {
        self.decided
    }

    /// The current round number (1-based once started).
    pub fn round(&self) -> u32 {
        self.r
    }

    fn read_leaders<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) -> PSet {
        match self.leader_input {
            LeaderInput::Oracle => ctx.trusted(),
            LeaderInput::External => self.external_leaders,
        }
    }

    /// Lines 03–04: enter round `r+1` and broadcast `PHASE1`.
    fn begin_round<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        self.r += 1;
        // Rounds below the new current one are never read again: recycle
        // their slabs (messages for them are dropped on arrival too).
        self.p1.retire_below(self.r);
        self.p2.retire_below(self.r);
        ctx.publish(slot::ROUND, FdValue::Num(self.r as u64));
        self.li = self.read_leaders(ctx);
        self.stage = Stage::Phase1;
        ctx.broadcast(KsetMsg::Phase1 {
            r: self.r,
            leaders: self.li,
            est: self.est,
        });
    }

    /// Re-evaluates the `wait until` guards; makes all enabled transitions.
    fn try_advance<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        loop {
            match self.stage {
                Stage::Done => return,
                Stage::Phase1 => {
                    let quorum = ctx.n() - ctx.t();
                    let n = ctx.n();
                    let li = self.li;
                    let (count, from_leader) = {
                        let slab = self.p1.entry(self.r, || Phase1Slab::new(n));
                        (slab.count(), slab.heard_from(li))
                    };
                    // Line 05: n−t PHASE1(r) messages.
                    if count < quorum {
                        return;
                    }
                    // Line 06: one from a member of L_i, or trusted_i moved.
                    // (`read_leaders` queries the oracle, so it must stay
                    // short-circuited exactly as before.)
                    if !from_leader && self.read_leaders(ctx) == li {
                        return;
                    }
                    // Lines 07–08: aux_i := v_L if a majority agrees on one
                    // leader set L and some member of L supplied a value.
                    let slab = self.p1.get(self.r).expect("entry created above");
                    self.aux = slab.majority(n).and_then(|l| slab.min_member_est(l));
                    // Line 10: broadcast PHASE2.
                    self.stage = Stage::Phase2;
                    ctx.broadcast(KsetMsg::Phase2 {
                        r: self.r,
                        aux: self.aux,
                    });
                }
                Stage::Phase2 => {
                    let quorum = ctx.n() - ctx.t();
                    let slab = *self.p2.entry(self.r, Phase2Slab::default);
                    // Line 11: n−t PHASE2(r) messages.
                    if slab.count() < quorum {
                        return;
                    }
                    // Line 13: adopt any non-⊥ value (deterministically the
                    // smallest, any choice is correct).
                    if let Some(v) = slab.min_val() {
                        self.est = v;
                    }
                    // Line 14: decide if no ⊥ was received.
                    if slab.all_non_bot() {
                        ctx.rb_broadcast(KsetMsg::Decision { v: self.est });
                        self.stage = Stage::Done;
                        return;
                    }
                    self.begin_round(ctx);
                }
            }
        }
    }
}

impl Automaton for KsetOmega {
    type Msg = KsetMsg;

    fn on_start<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        self.begin_round(ctx);
        self.try_advance(ctx);
    }

    fn on_message<O: OracleSuite + ?Sized>(
        &mut self,
        from: ProcessId,
        msg: KsetMsg,
        ctx: &mut Ctx<'_, KsetMsg, O>,
    ) {
        match msg {
            // Messages for rounds already finished were write-only state in
            // the reference implementation (the guards only ever read the
            // current round); here they are dropped outright so retired
            // slabs stay retired.
            KsetMsg::Phase1 { r, leaders, est } if r >= self.r => {
                let n = ctx.n();
                self.p1
                    .entry(r, || Phase1Slab::new(n))
                    .insert(from, leaders, est);
            }
            KsetMsg::Phase2 { r, aux } if r >= self.r => {
                self.p2.entry(r, Phase2Slab::default).insert(from, aux);
            }
            KsetMsg::Phase1 { .. } | KsetMsg::Phase2 { .. } => {}
            // Plain channels never carry decisions, but be permissive: a
            // composed wrapper may re-route them.
            KsetMsg::Decision { v } => self.on_rb_deliver(from, KsetMsg::Decision { v }, ctx),
        }
        self.try_advance(ctx);
    }

    fn on_rb_deliver<O: OracleSuite + ?Sized>(
        &mut self,
        _from: ProcessId,
        msg: KsetMsg,
        ctx: &mut Ctx<'_, KsetMsg, O>,
    ) {
        // Task T2: on R-delivery of DECISION(v), return v.
        if let KsetMsg::Decision { v } = msg {
            if !self.decided {
                self.decided = true;
                self.stage = Stage::Done;
                ctx.decide(v);
                ctx.halt();
            }
        }
    }

    fn on_step<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        // trusted_i is time-dependent: the line 06 guard and the line 03
        // re-read both need periodic re-evaluation.
        self.try_advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_detectors::OmegaOracle;
    use fd_sim::{FailurePattern, Sim, SimConfig, Time};

    fn run(n: usize, t: usize, z: usize, gst: u64, seed: u64) -> fd_sim::Trace {
        let fp = FailurePattern::all_correct(n);
        let oracle = OmegaOracle::new(fp.clone(), z, Time(gst), seed);
        let cfg = SimConfig::new(n, t).seed(seed).max_time(Time(60_000));
        let mut sim = Sim::new(
            cfg,
            fp.clone(),
            |p| KsetOmega::new(100 + p.0 as u64),
            oracle,
        );
        let correct = fp.correct();
        sim.run_until(move |tr| tr.deciders().is_superset(correct))
            .trace
    }

    #[test]
    fn consensus_with_omega_1() {
        let tr = run(5, 2, 1, 300, 1);
        assert_eq!(tr.deciders().len(), 5);
        assert_eq!(tr.decided_values().len(), 1);
    }

    #[test]
    fn two_set_agreement_with_omega_2() {
        for seed in 0..5 {
            let tr = run(5, 2, 2, 300, seed);
            assert_eq!(tr.deciders().len(), 5);
            assert!(
                tr.decided_values().len() <= 2,
                "decided {:?}",
                tr.decided_values()
            );
        }
    }

    #[test]
    fn validity_decided_values_are_proposals() {
        let tr = run(6, 2, 2, 200, 7);
        for v in tr.decided_values() {
            assert!((100..106).contains(&v));
        }
    }

    #[test]
    fn single_round_with_perfect_oracle_and_no_crash() {
        let fp = FailurePattern::all_correct(4);
        let oracle = OmegaOracle::perfect(fp.clone(), 1, 3);
        let cfg = SimConfig::new(4, 1).seed(3);
        let mut sim = Sim::new(cfg, fp.clone(), |p| KsetOmega::new(p.0 as u64), oracle);
        let correct = fp.correct();
        let rep = sim.run_until(move |tr| tr.deciders().is_superset(correct));
        // Oracle efficiency: every process stays in round 1.
        for i in 0..4 {
            let h = rep.trace.history(ProcessId(i), slot::ROUND);
            assert_eq!(h.last(), Some(FdValue::Num(1)), "{i} left round 1");
        }
    }
}
