//! Executable witnesses of **Theorem 5**'s lower bounds: `k`-set agreement
//! is solvable in `AS_{n,t}[Ω_z]` **iff** `t < n/2` and `z ≤ k`.
//!
//! The sufficiency half is the Figure 3 algorithm itself
//! ([`crate::kset_omega`]); this module exhibits concrete runs for the
//! necessity half:
//!
//! * [`find_z_violation`] — with an (entirely legal) `Ω_{k+1}` whose
//!   eventual leader set contains `k+1` *correct* processes, the adversary
//!   delays one leader's messages so that different majorities adopt
//!   estimates from different leaders, and more than `k` values get
//!   decided;
//! * [`partition_blocks`] — with `t ≥ n/2` the classic two-partition
//!   schedule starves every majority (`> n/2`) leader-set certificate, so
//!   no correct process ever decides.
//!
//! Neither witness is a proof (proofs quantify over all algorithms); each
//! is the proof's run construction made machine-checkable against this
//! repository's implementation.

use crate::scenario::{run_kset_with, KsetScenario};
use fd_detectors::scenario::ScenarioReport;
use fd_detectors::OmegaOracle;
use fd_sim::{DelayModel, DelayRule, FailurePattern, PSet, ProcessId, Time};

/// Searches `seeds` for a run in which the Figure 3 algorithm, fed an
/// `Ω_{k+1}` detector (legal but one line below `Ω_k` in the grid),
/// decides **more than `k` distinct values** — an agreement violation
/// witnessing `z ≤ k`'s necessity.
///
/// Returns the first violating `(seed, report)`.
pub fn find_z_violation(
    n: usize,
    t: usize,
    k: usize,
    seeds: std::ops::Range<u64>,
) -> Option<(u64, ScenarioReport)> {
    assert!(t < n / 2 + n % 2, "keep t < n/2 so only z is at fault");
    assert!(k < n, "need z = k+1 <= n");
    let fp = FailurePattern::all_correct(n);
    // Eventual leader set: k+1 correct processes (distinct proposals).
    let leaders: PSet = (0..k + 1).map(ProcessId).collect();
    // Silence the lowest-id leader towards the non-leaders: processes that
    // hear only the other leaders adopt different estimates.
    let lowest = ProcessId(0);
    let others = leaders.complement(n);
    for seed in seeds {
        let spec = KsetScenario::spec(n, t, k)
            .z(k + 1)
            .gst(Time::ZERO)
            .max_time(Time(60_000))
            .seed(seed)
            .delay(DelayModel::Uniform { lo: 1, hi: 12 })
            .rule(DelayRule::silence_until(
                PSet::singleton(lowest),
                others,
                Time(2_000),
            ));
        let oracle = OmegaOracle::with_final_set(fp.clone(), k + 1, Time::ZERO, seed, leaders);
        let report = run_kset_with(&spec, fp.clone(), oracle);
        if report.metrics.decided_values.len() > k {
            return Some((seed, report));
        }
    }
    None
}

/// The `t ≥ n/2` partition schedule: two halves of the system never hear
/// each other (all cross-half messages delayed past the horizon). With
/// `n − t ≤ n/2`, each half clears the `n − t` quorums locally but no
/// process ever assembles a *majority* certificate for a leader set, so no
/// decision is ever reached — termination fails exactly as the bound says.
pub fn partition_blocks(n: usize, t: usize, seed: u64) -> ScenarioReport {
    assert!(2 * t >= n, "need t >= n/2 for this witness");
    let fp = FailurePattern::all_correct(n);
    let half_a: PSet = (0..n / 2).map(ProcessId).collect();
    let half_b = half_a.complement(n);
    let horizon = Time(30_000);
    let spec = KsetScenario::spec(n, t, 1)
        .gst(Time::ZERO)
        .max_time(horizon)
        .seed(seed)
        .rule(DelayRule::silence_until(half_a, half_b, horizon + 1))
        .rule(DelayRule::silence_until(half_b, half_a, horizon + 1));
    let oracle = OmegaOracle::with_final_set(
        fp.clone(),
        1,
        Time::ZERO,
        seed,
        PSet::singleton(ProcessId(0)),
    );
    run_kset_with(&spec, fp, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_detectors::scenario::default_proposals;

    #[test]
    fn z_above_k_breaks_agreement() {
        let found = find_z_violation(5, 2, 1, 0..60);
        let (seed, report) = found.expect("no agreement violation found in 60 seeds");
        assert!(
            report.metrics.decided_values.len() > 1,
            "seed {seed} decided {:?}",
            report.metrics.decided_values
        );
        // Validity still holds — only agreement degrades.
        assert!(crate::spec::validity(&report.trace, &default_proposals(report.spec.n)).ok);
    }

    #[test]
    fn partition_starves_decisions() {
        for seed in 0..3 {
            let report = partition_blocks(4, 2, seed);
            assert!(
                report.trace.decisions().is_empty(),
                "seed {seed}: partition run decided {:?}",
                report.metrics.decided_values
            );
            assert!(!report.check.ok, "termination should have failed");
        }
    }
}
