//! Executable witnesses of **Theorem 5**'s lower bounds: `k`-set agreement
//! is solvable in `AS_{n,t}[Ω_z]` **iff** `t < n/2` and `z ≤ k`.
//!
//! The sufficiency half is the Figure 3 algorithm itself
//! ([`crate::kset_omega`]); this module exhibits concrete runs for the
//! necessity half:
//!
//! * [`find_z_violation`] — with an (entirely legal) `Ω_{k+1}` whose
//!   eventual leader set contains `k+1` *correct* processes, the adversary
//!   delays one leader's messages so that different majorities adopt
//!   estimates from different leaders, and more than `k` values get
//!   decided;
//! * [`partition_blocks`] — with `t ≥ n/2` the classic two-partition
//!   schedule starves every majority (`> n/2`) leader-set certificate, so
//!   no correct process ever decides.
//!
//! Neither witness is a proof (proofs quantify over all algorithms); each
//! is the proof's run construction made machine-checkable against this
//! repository's implementation.

use crate::harness::{KsetConfig, KsetReport};
use fd_detectors::OmegaOracle;
use fd_sim::{DelayRule, FailurePattern, PSet, ProcessId, Time};

/// Searches `seeds` for a run in which the Figure 3 algorithm, fed an
/// `Ω_{k+1}` detector (legal but one line below `Ω_k` in the grid),
/// decides **more than `k` distinct values** — an agreement violation
/// witnessing `z ≤ k`'s necessity.
///
/// Returns the first violating `(seed, report)`.
pub fn find_z_violation(
    n: usize,
    t: usize,
    k: usize,
    seeds: std::ops::Range<u64>,
) -> Option<(u64, KsetReport)> {
    assert!(t < n / 2 + n % 2, "keep t < n/2 so only z is at fault");
    assert!(k + 1 <= n, "need z = k+1 <= n");
    let fp = FailurePattern::all_correct(n);
    // Eventual leader set: k+1 correct processes (distinct proposals).
    let leaders: PSet = (0..k + 1).map(ProcessId).collect();
    // Silence the lowest-id leader towards the non-leaders: processes that
    // hear only the other leaders adopt different estimates.
    let lowest = ProcessId(0);
    let others = leaders.complement(n);
    for seed in seeds {
        let mut cfg = KsetConfig {
            z: k + 1,
            gst: Time::ZERO,
            max_time: Time(60_000),
            ..KsetConfig::new(n, t, k)
        }
        .seed(seed);
        cfg.delay = fd_sim::DelayModel::Uniform { lo: 1, hi: 12 };
        let oracle =
            OmegaOracle::with_final_set(fp.clone(), k + 1, Time::ZERO, seed, leaders);
        let rule = DelayRule::silence_until(PSet::singleton(lowest), others, Time(2_000));
        let report = run_kset_with_oracle_with_rules(&cfg, fp.clone(), oracle, vec![rule]);
        if report.decided_values.len() > k {
            return Some((seed, report));
        }
    }
    None
}

/// Variant of the harness runner that injects targeted-delay rules.
fn run_kset_with_oracle_with_rules(
    cfg: &KsetConfig,
    fp: FailurePattern,
    oracle: impl fd_sim::OracleSuite,
    rules: Vec<DelayRule>,
) -> KsetReport {
    let proposals: Vec<u64> = (0..cfg.n).map(|i| 100 + i as u64).collect();
    let sim_cfg = fd_sim::SimConfig {
        seed: cfg.seed,
        max_time: cfg.max_time,
        delay: cfg.delay.clone(),
        rules,
        ..fd_sim::SimConfig::new(cfg.n, cfg.t)
    };
    let mut sim = fd_sim::Sim::new(
        sim_cfg,
        fp.clone(),
        |p| crate::kset_omega::KsetOmega::new(proposals[p.0]),
        oracle,
    );
    let correct = fp.correct();
    let rep = sim.run_until(move |tr| tr.deciders().is_superset(correct));
    let trace = rep.trace;
    KsetReport {
        spec: crate::spec::kset_spec(&trace, &fp, cfg.k, &proposals),
        max_round: crate::spec::max_round(&trace, &fp),
        msgs_sent: trace.counter(fd_sim::counter::SENT),
        decided_values: trace.decided_values(),
        last_decision: crate::spec::decision_span(&trace).map(|(_, l)| l),
        proposals,
        fp,
        trace,
    }
}

/// The `t ≥ n/2` partition schedule: two halves of the system never hear
/// each other (all cross-half messages delayed past the horizon). With
/// `n − t ≤ n/2`, each half clears the `n − t` quorums locally but no
/// process ever assembles a *majority* certificate for a leader set, so no
/// decision is ever reached — termination fails exactly as the bound says.
pub fn partition_blocks(n: usize, t: usize, seed: u64) -> KsetReport {
    assert!(2 * t >= n, "need t >= n/2 for this witness");
    let fp = FailurePattern::all_correct(n);
    let half_a: PSet = (0..n / 2).map(ProcessId).collect();
    let half_b = half_a.complement(n);
    let horizon = Time(30_000);
    let rules = vec![
        DelayRule::silence_until(half_a, half_b, horizon + 1),
        DelayRule::silence_until(half_b, half_a, horizon + 1),
    ];
    let cfg = KsetConfig {
        z: 1,
        gst: Time::ZERO,
        max_time: horizon,
        ..KsetConfig::new(n, t, 1)
    }
    .seed(seed);
    let oracle = OmegaOracle::with_final_set(
        fp.clone(),
        1,
        Time::ZERO,
        seed,
        PSet::singleton(ProcessId(0)),
    );
    run_kset_with_oracle_with_rules(&cfg, fp, oracle, rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_above_k_breaks_agreement() {
        let found = find_z_violation(5, 2, 1, 0..60);
        let (seed, report) = found.expect("no agreement violation found in 60 seeds");
        assert!(
            report.decided_values.len() > 1,
            "seed {seed} decided {:?}",
            report.decided_values
        );
        // Validity still holds — only agreement degrades.
        assert!(crate::spec::validity(&report.trace, &report.proposals).ok);
    }

    #[test]
    fn partition_starves_decisions() {
        for seed in 0..3 {
            let report = partition_blocks(4, 2, seed);
            assert!(
                report.trace.decisions().is_empty(),
                "seed {seed}: partition run decided {:?}",
                report.decided_values
            );
            assert!(!report.spec.ok, "termination should have failed");
        }
    }
}
