//! Thin one-call adapters over the scenario engine.
//!
//! All sim setup, crash materialization, oracle assembly, and report
//! assembly live in `fd_detectors::scenario` and [`crate::scenario`]; this
//! module only provides the historical entry-point names.

use crate::scenario::{run_kset_with, ConsensusScenario, KsetScenario};
pub use fd_detectors::scenario::{
    CrashPlan, LinkOverride, MessageAdversary, MessageRule, QueueKind, ReportCache, RuleAction,
    ScenarioReport, ScenarioSpec, TopologyEpoch, TopologySchedule,
};
use fd_detectors::scenario::{Runner, SweepSummary};
use fd_detectors::Scenario;
use fd_sim::{FailurePattern, PSet};
use std::ops::Range;

/// The conventional `k`-set agreement spec: `n` processes, resilience `t`,
/// `k = z`, `Ω_z` oracle with GST 300, no crashes.
pub fn kset_config(n: usize, t: usize, k: usize) -> ScenarioSpec {
    KsetScenario::spec(n, t, k)
}

/// Runs the Figure 3 algorithm under an (adversarial) `Ω_z` oracle and
/// checks the `k`-set agreement specification.
///
/// # Panics
///
/// Panics if the configuration violates the model (`t ≥ n`, `z > n`).
pub fn run_kset_omega(spec: &ScenarioSpec) -> ScenarioReport {
    KsetScenario.run(spec)
}

/// As [`run_kset_omega`] with a caller-supplied oracle (used by the
/// lower-bound experiments that need hand-crafted adversarial oracles).
pub fn run_kset_with_oracle(
    spec: &ScenarioSpec,
    fp: FailurePattern,
    oracle: impl fd_sim::OracleSuite,
) -> ScenarioReport {
    run_kset_with(spec, fp, oracle)
}

/// Runs the MR `◇S` consensus baseline and checks the consensus (`k = 1`)
/// specification.
pub fn run_consensus_mr(spec: &ScenarioSpec) -> ScenarioReport {
    ConsensusScenario.run(spec)
}

/// Streams a multi-seed sweep of the Figure 3 algorithm into a
/// [`SweepSummary`] without retaining per-run traces — the entry point for
/// million-seed envelope checks (memory stays `O(threads)` full reports).
pub fn sweep_kset_summary(base: &ScenarioSpec, seeds: Range<u64>, runner: Runner) -> SweepSummary {
    runner.sweep_summary(&KsetScenario, base, seeds)
}

/// As [`sweep_kset_summary`] for the MR `◇S` consensus baseline.
pub fn sweep_consensus_summary(
    base: &ScenarioSpec,
    seeds: Range<u64>,
    runner: Runner,
) -> SweepSummary {
    runner.sweep_summary(&ConsensusScenario, base, seeds)
}

/// Convenience: the set of processes that decided.
pub fn deciders(report: &ScenarioReport) -> PSet {
    report.trace.deciders()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::Time;

    #[test]
    fn kset_harness_end_to_end() {
        for seed in 0..4 {
            let cfg = kset_config(5, 2, 2).seed(seed).crashes(CrashPlan::Random {
                f: 2,
                by: Time(500),
            });
            let rep = run_kset_omega(&cfg);
            assert!(rep.check.ok, "seed {seed}: {}", rep.check);
            assert!(rep.metrics.max_round >= 1);
            assert!(rep.metrics.msgs_sent > 0);
        }
    }

    #[test]
    fn consensus_harness_end_to_end() {
        let cfg = kset_config(5, 2, 1).seed(3);
        let rep = run_consensus_mr(&cfg);
        assert!(rep.check.ok, "{}", rep.check);
        assert_eq!(rep.metrics.decided_values.len(), 1);
    }

    #[test]
    fn queue_impls_are_fingerprint_identical_through_the_harness() {
        // The adapter layer passes the spec's queue knob straight through:
        // the calendar queue and the reference heap must produce the same
        // run, bit for bit, for both algorithms.
        for seed in 0..6 {
            let base = kset_config(5, 2, 2)
                .seed(seed)
                .crashes(CrashPlan::Anarchic { by: Time(400) });
            let cal = run_kset_omega(&base.clone().queue(QueueKind::Calendar));
            let heap = run_kset_omega(&base.queue(QueueKind::BinaryHeap));
            assert_eq!(cal.fingerprint(), heap.fingerprint(), "kset seed {seed}");
            let base = kset_config(5, 2, 1).seed(seed);
            let cal = run_consensus_mr(&base.clone().queue(QueueKind::Calendar));
            let heap = run_consensus_mr(&base.queue(QueueKind::BinaryHeap));
            assert_eq!(
                cal.fingerprint(),
                heap.fingerprint(),
                "consensus seed {seed}"
            );
        }
    }

    #[test]
    fn adversary_knob_threads_through_the_harness() {
        // Explicit None is bit-identical to the default spec; an armed
        // adversary changes the run and reports its effects as counters.
        let base = kset_config(5, 2, 2)
            .seed(4)
            .gst(Time(400))
            .crashes(CrashPlan::Anarchic { by: Time(400) });
        let default_run = run_kset_omega(&base);
        let none = run_kset_omega(&base.clone().adversary(MessageAdversary::None));
        assert_eq!(default_run.fingerprint(), none.fingerprint());
        // Within-tolerance attack on a failure-free run: silencing one
        // sender (≤ t) is crash-equivalent — the n − t quorums never needed
        // it — and duplication is always harmless. Uniform drops, by
        // contrast, are *outside* the algorithm's liveness tolerance (one
        // permanently lost phase message can wedge a round forever); the
        // negative tests in tests/scenario_engine.rs pin that side.
        use fd_sim::{PSet, ProcessId};
        let muted = ProcessId(0);
        let armed = base
            .clone()
            .crashes(CrashPlan::None)
            .adversary(MessageAdversary::Rules(vec![
                MessageRule::drop(100)
                    .links(PSet::singleton(muted), PSet::singleton(muted).complement(5)),
                MessageRule::duplicate(20),
            ]));
        let rep = run_kset_omega(&armed);
        assert!(rep.check.ok, "{}", rep.check);
        let slim = rep.slim();
        assert!(slim.counter("sim.dropped") > 0);
        assert!(slim.counter("sim.duplicated") > 0);
        assert_ne!(rep.fingerprint(), default_run.fingerprint());
        // And bit-reproducibly so.
        assert_eq!(rep.fingerprint(), run_kset_omega(&armed).fingerprint());
    }

    #[test]
    fn topology_knob_threads_through_the_harness() {
        // Explicit None is bit-identical to the default spec; a partition
        // healing before GST changes the run, severs messages (the
        // sim.partitioned counter), and still decides — and the whole
        // thing is bit-reproducible.
        use fd_sim::{ProcessId, TopologySchedule};
        // Seed 5 puts the post-GST leader in the big island; a seed whose
        // leader is the isolated p4 (e.g. 4) wedges instead — the bench
        // leg's phase diagram maps that dependence out.
        let base = kset_config(5, 2, 2).seed(5).gst(Time(400));
        let default_run = run_kset_omega(&base);
        let none = run_kset_omega(&base.clone().topology(TopologySchedule::None));
        assert_eq!(default_run.fingerprint(), none.fingerprint());
        // {0,1,2,3} | {4}: the big island holds n - t = 3 quorums and (for
        // this seed) the post-GST leader, so it decides on its own; the
        // isolated p4 cannot — its round-1 phase messages are severed — but
        // the rb DECISION is *delayed until the heal*, never lost, so p4
        // still terminates. A heal after the horizon would honestly fail
        // liveness (the bench leg's negative witness pins that side).
        let islands = vec![
            (0..4).map(ProcessId).collect(),
            (4..5).map(ProcessId).collect(),
        ];
        let cut = base
            .clone()
            .topology(TopologySchedule::partition_until(islands, Time(200)));
        let rep = run_kset_omega(&cut);
        assert!(rep.check.ok, "{}", rep.check);
        let slim = rep.slim();
        assert!(slim.counter("sim.partitioned") > 0);
        assert_eq!(slim.counter("sim.dropped"), 0, "severed is not dropped");
        assert_ne!(rep.fingerprint(), default_run.fingerprint());
        assert_eq!(rep.fingerprint(), run_kset_omega(&cut).fingerprint());
    }

    #[test]
    fn churn_plan_is_scored_by_the_safety_envelope() {
        // The bare Figure 3 algorithm has no catch-up, so churn runs claim
        // safety only — and the envelope passes them on those terms
        // (upgrading to liveness is the facade churn scenario's job).
        for seed in 0..4 {
            let cfg = kset_config(6, 2, 1)
                .seed(seed)
                .gst(Time(300))
                .max_time(Time(20_000))
                .crashes(CrashPlan::Churn {
                    crash_by: Time(200),
                    rejoin_after: 100,
                });
            let rep = run_kset_omega(&cfg);
            assert!(rep.check.ok, "seed {seed}: {}", rep.check);
            assert!(
                rep.check.detail.contains("liveness not claimed"),
                "seed {seed}: {}",
                rep.check
            );
        }
    }

    #[test]
    fn churn_plan_runs_through_the_harness() {
        // Churn regression at the adapter level. Liveness is genuinely not
        // guaranteed here: with f = t churn only n − 2t processes run the
        // whole window, which is below the n − t quorum, and a fresh
        // joiner starts in round 1 with no catch-up — so the assertions
        // are safety (validity + k-agreement of whatever was decided),
        // structure, and determinism, never termination.
        use crate::spec;
        use fd_detectors::scenario::default_proposals;
        for seed in 0..4 {
            let cfg = kset_config(5, 2, 2)
                .seed(seed)
                .gst(Time(400))
                .max_time(Time(20_000))
                .crashes(CrashPlan::Churn {
                    crash_by: Time(200),
                    rejoin_after: 100,
                });
            let rep = run_kset_omega(&cfg);
            assert_eq!(rep.fp.num_faulty(), 2, "seed {seed}");
            let proposals = default_proposals(5);
            assert!(spec::validity(&rep.trace, &proposals).ok, "seed {seed}");
            assert!(spec::k_agreement(&rep.trace, 2).ok, "seed {seed}");
            // Bit-identical on a rerun and on the reference queue.
            let again = run_kset_omega(&cfg);
            assert_eq!(rep.fingerprint(), again.fingerprint(), "seed {seed}");
            let heap = run_kset_omega(&cfg.clone().queue(QueueKind::BinaryHeap));
            assert_eq!(rep.fingerprint(), heap.fingerprint(), "seed {seed}");
        }
    }

    #[test]
    fn streamed_sweep_matches_eager_reports() {
        let cfg = kset_config(5, 2, 2)
            .gst(Time(400))
            .crashes(CrashPlan::Random {
                f: 2,
                by: Time(500),
            });
        let eager: Vec<ScenarioReport> = (0..16)
            .map(|seed| run_kset_omega(&cfg.with_seed(seed)))
            .collect();
        let streamed = sweep_kset_summary(&cfg, 0..16, fd_detectors::scenario::Runner::parallel());
        assert_eq!(streamed.runs, 16);
        assert_eq!(
            streamed.passes,
            eager.iter().filter(|r| r.check.ok).count() as u64
        );
        assert_eq!(
            streamed.total_msgs,
            eager.iter().map(|r| r.metrics.msgs_sent).sum::<u64>()
        );
    }

    #[test]
    fn cached_kset_sweep_matches_cold_sweep_through_the_harness() {
        let cache: &'static ReportCache = Box::leak(Box::new(ReportCache::new()));
        let cfg = kset_config(5, 2, 2)
            .gst(Time(400))
            .crashes(CrashPlan::Random {
                f: 2,
                by: Time(500),
            });
        let runner = fd_detectors::scenario::Runner::with_threads(2).with_cache(cache);
        let cold = sweep_kset_summary(&cfg, 0..12, runner);
        assert_eq!((cold.runs, cache.misses()), (12, 12));
        // Warm, on the other event core: the cache key ignores the queue
        // knob (the event core never changes a trace), so everything hits.
        let warm = sweep_kset_summary(&cfg.clone().queue(QueueKind::BinaryHeap), 0..12, runner);
        assert_eq!(warm, cold);
        assert_eq!(cache.misses(), 12, "warm sweep recomputed a run");
        assert_eq!(cache.hits(), 12);
    }

    #[test]
    fn auto_queue_is_the_default_and_changes_nothing() {
        let base = kset_config(5, 2, 2)
            .seed(7)
            .gst(Time(400))
            .crashes(CrashPlan::Anarchic { by: Time(400) });
        assert_eq!(base.queue, QueueKind::Auto);
        let auto = run_kset_omega(&base);
        let cal = run_kset_omega(&base.clone().queue(QueueKind::Calendar));
        let heap = run_kset_omega(&base.clone().queue(QueueKind::BinaryHeap));
        assert_eq!(auto.fingerprint(), cal.fingerprint());
        assert_eq!(auto.fingerprint(), heap.fingerprint());
    }

    #[test]
    fn zero_degradation_single_round() {
        // Perfect oracle (gst = 0) + only initial crashes ⇒ round 1.
        for seed in 0..4 {
            let cfg = kset_config(6, 2, 1)
                .seed(seed)
                .gst(Time::ZERO)
                .crashes(CrashPlan::Initial { f: 2 });
            let rep = run_kset_omega(&cfg);
            assert!(rep.check.ok, "seed {seed}: {}", rep.check);
            assert_eq!(
                rep.metrics.max_round, 1,
                "seed {seed} took {} rounds",
                rep.metrics.max_round
            );
        }
    }
}
