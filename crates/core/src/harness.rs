//! Assembled experiments: configure, run, and check a set-agreement
//! execution in one call.

use crate::consensus_mr::ConsensusMr;
use crate::kset_omega::KsetOmega;
use crate::spec;
use fd_detectors::{CheckOutcome, OmegaOracle, Scope, SxOracle};
use fd_sim::{
    counter, DelayModel, FailurePattern, PSet, Sim, SimConfig, SplitMix64, Time, Trace,
};

/// How crashes are injected into a run.
#[derive(Clone, Debug)]
pub enum CrashPlan {
    /// Failure-free run.
    None,
    /// `f` random processes crash at random times up to `by`.
    Random {
        /// Number of crashes.
        f: usize,
        /// Latest crash time.
        by: Time,
    },
    /// `f` random processes crash before the run starts (the premise of the
    /// paper's zero-degradation property).
    Initial {
        /// Number of crashes.
        f: usize,
    },
    /// An explicit pattern.
    Explicit(FailurePattern),
}

impl CrashPlan {
    /// Materializes the plan into a pattern for `n` processes.
    pub fn materialize(&self, n: usize, seed: u64) -> FailurePattern {
        let mut rng = SplitMix64::new(seed).stream(0xC4A5);
        match self {
            CrashPlan::None => FailurePattern::all_correct(n),
            CrashPlan::Random { f, by } => FailurePattern::random(n, *f, *by, &mut rng),
            CrashPlan::Initial { f } => FailurePattern::random_initial(n, *f, &mut rng),
            CrashPlan::Explicit(fp) => fp.clone(),
        }
    }
}

/// Configuration of one `k`-set agreement experiment.
#[derive(Clone, Debug)]
pub struct KsetConfig {
    /// System size.
    pub n: usize,
    /// Resilience bound (`t < n/2` required by the algorithm).
    pub t: usize,
    /// Agreement degree `k`.
    pub k: usize,
    /// Oracle parameter `z` of the underlying `Ω_z` (`z ≤ k` for
    /// correctness; set `z > k` to reproduce the Theorem 5 violation).
    pub z: usize,
    /// Root seed.
    pub seed: u64,
    /// Oracle stabilization time.
    pub gst: Time,
    /// Crash injection.
    pub crashes: CrashPlan,
    /// Simulation horizon.
    pub max_time: Time,
    /// Message delay model.
    pub delay: DelayModel,
}

impl KsetConfig {
    /// A sensible default experiment: `n` processes, resilience `t`,
    /// `k = z`, random GST at 300, no crashes.
    pub fn new(n: usize, t: usize, k: usize) -> Self {
        KsetConfig {
            n,
            t,
            k,
            z: k,
            seed: 0,
            gst: Time(300),
            crashes: CrashPlan::None,
            max_time: Time(100_000),
            delay: DelayModel::default(),
        }
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the oracle parameter `z` (builder style).
    pub fn z(mut self, z: usize) -> Self {
        self.z = z;
        self
    }

    /// Sets the crash plan (builder style).
    pub fn crashes(mut self, crashes: CrashPlan) -> Self {
        self.crashes = crashes;
        self
    }

    /// Sets the oracle stabilization time (builder style).
    pub fn gst(mut self, gst: Time) -> Self {
        self.gst = gst;
        self
    }
}

/// Everything measured in one experiment run.
#[derive(Clone, Debug)]
pub struct KsetReport {
    /// The run's trace.
    pub trace: Trace,
    /// The run's failure pattern.
    pub fp: FailurePattern,
    /// The proposals used (process `p_i` proposes `100 + i`).
    pub proposals: Vec<u64>,
    /// Outcome of the full `k`-set agreement specification check.
    pub spec: CheckOutcome,
    /// Largest round reached by a correct process.
    pub max_round: u64,
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Distinct decided values.
    pub decided_values: Vec<u64>,
    /// Time of the last decision (if all correct decided).
    pub last_decision: Option<Time>,
}

fn proposals_for(n: usize) -> Vec<u64> {
    (0..n).map(|i| 100 + i as u64).collect()
}

/// Runs the Figure 3 algorithm under an (adversarial) `Ω_z` oracle and
/// checks the `k`-set agreement specification.
///
/// # Panics
///
/// Panics if the configuration violates the model (`t ≥ n`, `z > n`).
pub fn run_kset_omega(cfg: &KsetConfig) -> KsetReport {
    let fp = cfg.crashes.materialize(cfg.n, cfg.seed);
    let oracle = OmegaOracle::new(fp.clone(), cfg.z, cfg.gst, cfg.seed ^ 0x0A11);
    run_kset_with_oracle(cfg, fp, oracle)
}

/// As [`run_kset_omega`] with a caller-supplied oracle (used by the
/// lower-bound experiments that need hand-crafted adversarial oracles).
pub fn run_kset_with_oracle(
    cfg: &KsetConfig,
    fp: FailurePattern,
    oracle: impl fd_sim::OracleSuite,
) -> KsetReport {
    let proposals = proposals_for(cfg.n);
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        max_time: cfg.max_time,
        delay: cfg.delay.clone(),
        ..SimConfig::new(cfg.n, cfg.t)
    };
    let mut sim = Sim::new(
        sim_cfg,
        fp.clone(),
        |p| KsetOmega::new(proposals_for(cfg.n)[p.0]),
        oracle,
    );
    let correct = fp.correct();
    let rep = sim.run_until(move |tr| tr.deciders().is_superset(correct));
    let trace = rep.trace;
    KsetReport {
        spec: spec::kset_spec(&trace, &fp, cfg.k, &proposals),
        max_round: spec::max_round(&trace, &fp),
        msgs_sent: trace.counter(counter::SENT),
        decided_values: trace.decided_values(),
        last_decision: spec::decision_span(&trace).map(|(_, last)| last),
        proposals,
        fp,
        trace,
    }
}

/// Runs the MR `◇S` consensus baseline and checks the consensus (`k = 1`)
/// specification.
pub fn run_consensus_mr(cfg: &KsetConfig) -> KsetReport {
    let fp = cfg.crashes.materialize(cfg.n, cfg.seed);
    let proposals = proposals_for(cfg.n);
    // ◇S = ◇S_n.
    let oracle = SxOracle::new(
        fp.clone(),
        cfg.t,
        cfg.n,
        Scope::Eventual(cfg.gst),
        cfg.seed ^ 0x0511,
    );
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        max_time: cfg.max_time,
        delay: cfg.delay.clone(),
        ..SimConfig::new(cfg.n, cfg.t)
    };
    let mut sim = Sim::new(
        sim_cfg,
        fp.clone(),
        |p| ConsensusMr::new(proposals_for(cfg.n)[p.0]),
        oracle,
    );
    let correct = fp.correct();
    let rep = sim.run_until(move |tr| tr.deciders().is_superset(correct));
    let trace = rep.trace;
    KsetReport {
        spec: spec::kset_spec(&trace, &fp, 1, &proposals),
        max_round: spec::max_round(&trace, &fp),
        msgs_sent: trace.counter(counter::SENT),
        decided_values: trace.decided_values(),
        last_decision: spec::decision_span(&trace).map(|(_, last)| last),
        proposals,
        fp,
        trace,
    }
}

/// Convenience: the set of processes that decided.
pub fn deciders(report: &KsetReport) -> PSet {
    report.trace.deciders()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kset_harness_end_to_end() {
        for seed in 0..4 {
            let cfg = KsetConfig::new(5, 2, 2).seed(seed).crashes(CrashPlan::Random {
                f: 2,
                by: Time(500),
            });
            let rep = run_kset_omega(&cfg);
            assert!(rep.spec.ok, "seed {seed}: {}", rep.spec);
            assert!(rep.max_round >= 1);
            assert!(rep.msgs_sent > 0);
        }
    }

    #[test]
    fn consensus_harness_end_to_end() {
        let cfg = KsetConfig::new(5, 2, 1).seed(3);
        let rep = run_consensus_mr(&cfg);
        assert!(rep.spec.ok, "{}", rep.spec);
        assert_eq!(rep.decided_values.len(), 1);
    }

    #[test]
    fn zero_degradation_single_round() {
        // Perfect oracle (gst = 0) + only initial crashes ⇒ round 1.
        for seed in 0..4 {
            let cfg = KsetConfig::new(6, 2, 1)
                .seed(seed)
                .gst(Time::ZERO)
                .crashes(CrashPlan::Initial { f: 2 });
            let rep = run_kset_omega(&cfg);
            assert!(rep.spec.ok, "seed {seed}: {}", rep.spec);
            assert_eq!(rep.max_round, 1, "seed {seed} took {} rounds", rep.max_round);
        }
    }

    #[test]
    fn crash_plans_materialize() {
        assert_eq!(CrashPlan::None.materialize(4, 0).num_faulty(), 0);
        assert_eq!(
            CrashPlan::Random { f: 2, by: Time(10) }.materialize(5, 1).num_faulty(),
            2
        );
        let ini = CrashPlan::Initial { f: 3 }.materialize(7, 2);
        assert_eq!(ini.num_faulty(), 3);
        assert_eq!(ini.last_crash(), Time::ZERO);
    }
}
