//! Problem-specification checkers for `k`-set agreement.
//!
//! The paper's definition (§1): every process proposes a value and every
//! non-faulty process must decide (termination) such that at most `k`
//! different values are decided (agreement) and every decided value is a
//! proposed value (validity). `k = 1` is consensus.

use fd_detectors::{CheckOutcome, ViolationClass};
use fd_sim::{FailurePattern, Trace};

/// **Validity**: every decided value was proposed.
pub fn validity(trace: &Trace, proposals: &[u64]) -> CheckOutcome {
    for d in trace.decisions() {
        if !proposals.contains(&d.value) {
            return CheckOutcome::fail_as(
                ViolationClass::Validity,
                format!(
                    "validity: {} decided {} which was never proposed",
                    d.by, d.value
                ),
            );
        }
    }
    CheckOutcome::pass(None, "validity")
}

/// **k-Agreement**: at most `k` distinct values are decided.
pub fn k_agreement(trace: &Trace, k: usize) -> CheckOutcome {
    let distinct = trace.decided_values();
    if distinct.len() > k {
        CheckOutcome::fail_as(
            ViolationClass::Agreement,
            format!(
                "agreement: {} distinct values decided ({distinct:?}) > k = {k}",
                distinct.len()
            ),
        )
    } else {
        CheckOutcome::pass(
            None,
            format!("{} distinct decisions ≤ k = {k}", distinct.len()),
        )
    }
}

/// **Termination**: every correct process decides (within the horizon).
pub fn termination(trace: &Trace, fp: &FailurePattern) -> CheckOutcome {
    let missing = fp.correct() - trace.deciders();
    if missing.is_empty() {
        CheckOutcome::pass(None, "termination")
    } else {
        CheckOutcome::fail_as(
            ViolationClass::Termination,
            format!("termination: correct {missing} never decided"),
        )
    }
}

/// **No duplicate decisions**: a process decides at most once.
pub fn decide_once(trace: &Trace) -> CheckOutcome {
    let mut seen = fd_sim::PSet::new();
    for d in trace.decisions() {
        if !seen.insert(d.by) {
            return CheckOutcome::fail_as(
                ViolationClass::DecideOnce,
                format!("{} decided twice", d.by),
            );
        }
    }
    CheckOutcome::pass(None, "decide-once")
}

/// The full `k`-set agreement specification.
pub fn kset_spec(trace: &Trace, fp: &FailurePattern, k: usize, proposals: &[u64]) -> CheckOutcome {
    validity(trace, proposals)
        .and(k_agreement(trace, k))
        .and(termination(trace, fp))
        .and(decide_once(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::{ProcessId, Time};

    fn fp() -> FailurePattern {
        FailurePattern::builder(3)
            .crash(ProcessId(2), Time(10))
            .build()
    }

    #[test]
    fn validity_pass_fail() {
        let mut tr = Trace::new();
        tr.decide(Time(5), ProcessId(0), 7);
        assert!(validity(&tr, &[7, 9]).ok);
        assert!(!validity(&tr, &[9]).ok);
    }

    #[test]
    fn agreement_counts_distinct() {
        let mut tr = Trace::new();
        tr.decide(Time(1), ProcessId(0), 1);
        tr.decide(Time(2), ProcessId(1), 2);
        tr.decide(Time(3), ProcessId(2), 1);
        assert!(k_agreement(&tr, 2).ok);
        assert!(!k_agreement(&tr, 1).ok);
    }

    #[test]
    fn termination_needs_all_correct() {
        let mut tr = Trace::new();
        tr.decide(Time(1), ProcessId(0), 1);
        assert!(!termination(&tr, &fp()).ok);
        tr.decide(Time(2), ProcessId(1), 1);
        assert!(termination(&tr, &fp()).ok); // p3 is faulty, excused
    }

    #[test]
    fn decide_once_rejects_duplicates() {
        let mut tr = Trace::new();
        tr.decide(Time(1), ProcessId(0), 1);
        tr.decide(Time(2), ProcessId(0), 1);
        assert!(!decide_once(&tr).ok);
    }

    #[test]
    fn full_spec() {
        let mut tr = Trace::new();
        tr.decide(Time(1), ProcessId(0), 5);
        tr.decide(Time(2), ProcessId(1), 6);
        let out = kset_spec(&tr, &fp(), 2, &[5, 6]);
        assert!(out.ok, "{out}");
        assert!(!kset_spec(&tr, &fp(), 1, &[5, 6]).ok);
    }
}
