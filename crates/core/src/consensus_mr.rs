//! Baseline: the classic `◇S`-based consensus algorithm
//! (Mostéfaoui–Raynal, DISC 1999 — the paper's reference [18], of which
//! Figure 3 is the `Ω_k` descendant).
//!
//! Rotating-coordinator structure, `t < n/2`:
//!
//! * **Phase 1** of round `r`: the coordinator `c = p_{((r−1) mod n)+1}`
//!   broadcasts its estimate. Every process waits until it receives the
//!   coordinator's estimate **or** suspects the coordinator
//!   (`c ∈ suspected_i`), setting `aux_i` to the estimate or `⊥`.
//! * **Phase 2**: all-to-all exchange of `aux` values; wait for `n−t`.
//!   If all received values equal some `v ≠ ⊥`, reliably broadcast
//!   `DECISION(v)`; if any `v ≠ ⊥` arrived, adopt it as the new estimate.
//!
//! Quorum intersection (two majorities intersect) gives agreement; the
//! eventual weak accuracy of `◇S` gives termination: once some correct
//! coordinator is no longer suspected by anyone, its round decides.
//!
//! This baseline lets the benchmarks compare the paper's `Ω_k` algorithm
//! (at `k = 1`) against the prior consensus technology it generalizes.

use crate::rounds::{CoordSlab, EchoSlab, RoundWindow};
use fd_sim::{slot, Automaton, Ctx, FdValue, OracleSuite, ProcessId};

/// Message alphabet of the MR consensus algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MrMsg {
    /// The round coordinator's estimate.
    Coord {
        /// Round number.
        r: u32,
        /// The coordinator's estimate.
        est: u64,
    },
    /// Phase 2 echo (`None` = `⊥`).
    Echo {
        /// Round number.
        r: u32,
        /// The echoed `aux` value.
        aux: Option<u64>,
    },
    /// Reliable decision dissemination.
    Decision {
        /// The decided value.
        v: u64,
    },
}

impl fd_sim::Corruptible for MrMsg {
    /// Same corruption surface as the Figure 3 alphabet: estimates in
    /// flight move by at most the bound; decisions ride the (untouchable)
    /// reliable broadcast.
    fn corrupt(&mut self, bound: u64, rng: &mut fd_sim::SplitMix64) -> bool {
        match self {
            MrMsg::Coord { est, .. } => fd_sim::corrupt_u64(est, bound, rng),
            MrMsg::Echo { aux: Some(v), .. } => fd_sim::corrupt_u64(v, bound, rng),
            _ => false,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    AwaitCoord,
    AwaitEchoes,
    Done,
}

/// One process of the MR `◇S` consensus baseline.
///
/// Round state uses the recycled bitset slabs of [`crate::rounds`] (see
/// [`crate::kset_omega::KsetOmega`] for the rationale); the `vec-reference`
/// feature keeps the original `HashMap` implementation for the
/// differential suite.
#[derive(Clone, Debug)]
pub struct ConsensusMr {
    est: u64,
    r: u32,
    stage: Stage,
    coords: RoundWindow<CoordSlab>,
    echoes: RoundWindow<EchoSlab>,
    decided: bool,
}

impl ConsensusMr {
    /// Creates the process with its proposal.
    pub fn new(proposal: u64) -> Self {
        ConsensusMr {
            est: proposal,
            r: 0,
            stage: Stage::Done,
            coords: RoundWindow::new(),
            echoes: RoundWindow::new(),
            decided: false,
        }
    }

    /// Whether this process has decided.
    pub fn has_decided(&self) -> bool {
        self.decided
    }

    fn coordinator(&self, n: usize) -> ProcessId {
        ProcessId(((self.r as usize).saturating_sub(1)) % n)
    }

    fn begin_round<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        self.r += 1;
        // Finished rounds are never read again: recycle their slabs.
        self.coords.retire_below(self.r);
        self.echoes.retire_below(self.r);
        ctx.publish(slot::ROUND, FdValue::Num(self.r as u64));
        self.stage = Stage::AwaitCoord;
        if self.coordinator(ctx.n()) == ctx.me() {
            ctx.broadcast(MrMsg::Coord {
                r: self.r,
                est: self.est,
            });
        }
    }

    fn try_advance<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        loop {
            match self.stage {
                Stage::Done => return,
                Stage::AwaitCoord => {
                    let c = self.coordinator(ctx.n());
                    // `suspected()` queries the oracle: keep it
                    // short-circuited behind the coordinator check exactly
                    // as before.
                    let aux = if let Some(est) = self.coords.get(self.r).and_then(CoordSlab::est) {
                        Some(est)
                    } else if ctx.suspected().contains(c) {
                        None
                    } else {
                        return; // keep waiting
                    };
                    self.stage = Stage::AwaitEchoes;
                    ctx.broadcast(MrMsg::Echo { r: self.r, aux });
                }
                Stage::AwaitEchoes => {
                    let quorum = ctx.n() - ctx.t();
                    let slab = *self.echoes.entry(self.r, EchoSlab::default);
                    if slab.count() < quorum {
                        return;
                    }
                    if let Some(v) = slab.first_val() {
                        self.est = v;
                        if slab.all_non_bot() {
                            ctx.rb_broadcast(MrMsg::Decision { v });
                            self.stage = Stage::Done;
                            return;
                        }
                    }
                    self.begin_round(ctx);
                }
            }
        }
    }
}

impl Automaton for ConsensusMr {
    type Msg = MrMsg;

    fn on_start<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        self.begin_round(ctx);
        self.try_advance(ctx);
    }

    fn on_message<O: OracleSuite + ?Sized>(
        &mut self,
        from: ProcessId,
        msg: MrMsg,
        ctx: &mut Ctx<'_, MrMsg, O>,
    ) {
        match msg {
            // Stale-round messages were write-only state in the reference
            // implementation; drop them so retired slabs stay retired.
            MrMsg::Coord { r, est } if r >= self.r => {
                self.coords.entry(r, CoordSlab::default).record(est);
            }
            MrMsg::Echo { r, aux } if r >= self.r => {
                self.echoes.entry(r, EchoSlab::default).insert(from, aux);
            }
            MrMsg::Coord { .. } | MrMsg::Echo { .. } => {}
            MrMsg::Decision { v } => self.on_rb_deliver(from, MrMsg::Decision { v }, ctx),
        }
        self.try_advance(ctx);
    }

    fn on_rb_deliver<O: OracleSuite + ?Sized>(
        &mut self,
        _from: ProcessId,
        msg: MrMsg,
        ctx: &mut Ctx<'_, MrMsg, O>,
    ) {
        if let MrMsg::Decision { v } = msg {
            if !self.decided {
                self.decided = true;
                self.stage = Stage::Done;
                ctx.decide(v);
                ctx.halt();
            }
        }
    }

    fn on_step<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        // suspected_i is time-dependent: re-evaluate the phase 1 guard.
        self.try_advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_detectors::{Scope, SxOracle};
    use fd_sim::{FailurePattern, Sim, SimConfig, Time};

    fn run(n: usize, t: usize, gst: u64, seed: u64, fp: FailurePattern) -> fd_sim::Trace {
        // ◇S = ◇S_n.
        let oracle = SxOracle::new(fp.clone(), t, n, Scope::Eventual(Time(gst)), seed);
        let cfg = SimConfig::new(n, t).seed(seed).max_time(Time(100_000));
        let mut sim = Sim::new(
            cfg,
            fp.clone(),
            |p| ConsensusMr::new(10 + p.0 as u64),
            oracle,
        );
        let correct = fp.correct();
        sim.run_until(move |tr| tr.deciders().is_superset(correct))
            .trace
    }

    #[test]
    fn consensus_all_correct() {
        for seed in 0..5 {
            let tr = run(5, 2, 400, seed, FailurePattern::all_correct(5));
            assert_eq!(tr.deciders().len(), 5, "seed {seed}");
            assert_eq!(tr.decided_values().len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn consensus_with_crashes() {
        for seed in 0..5 {
            let fp = FailurePattern::builder(5)
                .crash(ProcessId(0), Time(40))
                .crash(ProcessId(3), Time(90))
                .build();
            let tr = run(5, 2, 400, seed, fp.clone());
            assert!(tr.deciders().is_superset(fp.correct()), "seed {seed}");
            assert_eq!(tr.decided_values().len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn validity_holds() {
        let tr = run(4, 1, 200, 9, FailurePattern::all_correct(4));
        for v in tr.decided_values() {
            assert!((10..14).contains(&v));
        }
    }
}
