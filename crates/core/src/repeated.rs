//! Repeated (long-lived) set agreement — the extension motivating the
//! paper's *zero degradation* property (§3.2): "zero-degradation is
//! particularly important when a set agreement algorithm is used
//! repeatedly: it means that future executions do not suffer from past
//! process failures as soon as the failure detector behaves perfectly."
//!
//! [`RepeatedKset`] runs `m` successive instances of the Figure 3
//! algorithm on one process set: a process enters instance `i+1` as soon
//! as it decides instance `i` (fresh proposals per instance, messages
//! tagged with the instance number and buffered across instance
//! boundaries). Experiment E11 measures per-instance round counts when
//! crashes hit during instance 0: with a perfect `Ω_k`, every later
//! instance decides in a single round — the zero-degradation claim made
//! longitudinal.

use crate::kset_omega::{KsetMsg, KsetOmega};
use fd_detectors::scenario::ScenarioSpec;
use fd_detectors::CheckOutcome;
use fd_sim::{
    counter, forward_ops, Automaton, Ctx, FailurePattern, Op, OracleSuite, ProcessId, Time, Trace,
};

/// Message of the repeated protocol: an inner Figure 3 message tagged with
/// its instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepMsg {
    /// Instance number (0-based).
    pub inst: u32,
    /// The inner algorithm message.
    pub inner: KsetMsg,
}

impl fd_sim::Corruptible for RepMsg {
    /// Corruption passes through to the inner Figure 3 message; the
    /// instance tag stays intact (same rationale as round numbers).
    fn corrupt(&mut self, bound: u64, rng: &mut fd_sim::SplitMix64) -> bool {
        self.inner.corrupt(bound, rng)
    }
}

/// Proposal of process `p` in instance `inst` (distinct per process and
/// instance, so cross-instance value leakage would be caught by validity).
pub fn proposal(p: ProcessId, inst: u32) -> u64 {
    1_000 * (inst as u64 + 1) + p.0 as u64
}

/// One process running `m` successive Figure 3 instances.
#[derive(Clone, Debug)]
pub struct RepeatedKset {
    instances: u32,
    cur: u32,
    kset: KsetOmega,
    /// Deliveries for future instances, replayed on entry.
    buffered: Vec<(ProcessId, u32, KsetMsg, bool)>,
    /// Retained partition buffer for the replay in `maybe_advance` — the
    /// buffers swap back and forth so instance boundaries allocate nothing
    /// once warm.
    scratch: Vec<(ProcessId, u32, KsetMsg, bool)>,
    finished: bool,
}

impl RepeatedKset {
    /// Creates the process, set to run `instances` instances.
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0`.
    pub fn new(me: ProcessId, instances: u32) -> Self {
        assert!(instances > 0, "need at least one instance");
        RepeatedKset {
            instances,
            cur: 0,
            kset: KsetOmega::new(proposal(me, 0)),
            buffered: Vec::new(),
            scratch: Vec::new(),
            finished: false,
        }
    }

    /// The instance this process is currently in.
    pub fn current_instance(&self) -> u32 {
        self.cur
    }

    /// Whether all instances have decided.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Runs an inner activation, filtering the inner `Halt` (the inner
    /// algorithm halts after deciding; the repeated wrapper instead
    /// advances to the next instance) and tagging outgoing messages.
    fn run_inner<O: OracleSuite + ?Sized>(
        &mut self,
        ctx: &mut Ctx<'_, RepMsg, O>,
        f: impl FnOnce(&mut KsetOmega, &mut Ctx<'_, KsetMsg, O>),
    ) {
        let inst = self.cur;
        let kset = &mut self.kset;
        let ((), mut ops) = ctx.reborrow_inner(|ictx| f(kset, ictx));
        ops.retain(|op| !matches!(op, Op::Halt));
        forward_ops(ctx, ops, |inner| RepMsg { inst, inner });
        self.maybe_advance(ctx);
    }

    /// If the current instance decided, move to the next one (replaying any
    /// buffered deliveries for it).
    fn maybe_advance<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, RepMsg, O>) {
        while self.kset.has_decided() && !self.finished {
            ctx.bump("repeated.instance_done");
            if self.cur + 1 >= self.instances {
                self.finished = true;
                ctx.halt();
                return;
            }
            self.cur += 1;
            self.kset = KsetOmega::new(proposal(ctx.me(), self.cur));
            let inst = self.cur;
            // Start the new instance.
            let kset = &mut self.kset;
            let ((), ops) = ctx.reborrow_inner(|ictx| kset.on_start(ictx));
            forward_ops(ctx, ops, |inner| RepMsg { inst, inner });
            // Replay buffered deliveries for this instance (in arrival
            // order), re-buffering later instances and dropping stale
            // ones. The two buffers swap rather than reallocate: `take`
            // moves the scratch Vec out so its drain can run alongside
            // the `&mut self` replay calls, then hands the (empty, still
            // warm) storage back.
            debug_assert!(self.scratch.is_empty());
            std::mem::swap(&mut self.buffered, &mut self.scratch);
            let mut pending = std::mem::take(&mut self.scratch);
            for (from, i, msg, rb) in pending.drain(..) {
                match i.cmp(&inst) {
                    std::cmp::Ordering::Less => {} // stale instance: drop
                    std::cmp::Ordering::Greater => self.buffered.push((from, i, msg, rb)),
                    std::cmp::Ordering::Equal => {
                        let kset = &mut self.kset;
                        let ((), mut ops) = ctx.reborrow_inner(|ictx| {
                            if rb {
                                kset.on_rb_deliver(from, msg, ictx)
                            } else {
                                kset.on_message(from, msg, ictx)
                            }
                        });
                        ops.retain(|op| !matches!(op, Op::Halt));
                        forward_ops(ctx, ops, |inner| RepMsg { inst, inner });
                    }
                }
            }
            self.scratch = pending;
        }
    }

    fn deliver<O: OracleSuite + ?Sized>(
        &mut self,
        from: ProcessId,
        msg: RepMsg,
        rb: bool,
        ctx: &mut Ctx<'_, RepMsg, O>,
    ) {
        if self.finished {
            return;
        }
        match msg.inst.cmp(&self.cur) {
            std::cmp::Ordering::Less => {} // stale instance: ignore
            std::cmp::Ordering::Greater => {
                self.buffered.push((from, msg.inst, msg.inner, rb));
            }
            std::cmp::Ordering::Equal => {
                self.run_inner(ctx, |k, ictx| {
                    if rb {
                        k.on_rb_deliver(from, msg.inner, ictx)
                    } else {
                        k.on_message(from, msg.inner, ictx)
                    }
                });
            }
        }
    }
}

impl Automaton for RepeatedKset {
    type Msg = RepMsg;

    fn on_start<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, RepMsg, O>) {
        self.run_inner(ctx, |k, ictx| k.on_start(ictx));
    }

    fn on_message<O: OracleSuite + ?Sized>(
        &mut self,
        from: ProcessId,
        msg: RepMsg,
        ctx: &mut Ctx<'_, RepMsg, O>,
    ) {
        self.deliver(from, msg, false, ctx);
    }

    fn on_rb_deliver<O: OracleSuite + ?Sized>(
        &mut self,
        from: ProcessId,
        msg: RepMsg,
        ctx: &mut Ctx<'_, RepMsg, O>,
    ) {
        self.deliver(from, msg, true, ctx);
    }

    fn on_step<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, RepMsg, O>) {
        if !self.finished {
            self.run_inner(ctx, |k, ictx| k.on_step(ictx));
        }
    }
}

/// Per-instance statistics of a repeated run.
#[derive(Clone, Debug)]
pub struct InstanceStats {
    /// Instance number.
    pub inst: u32,
    /// Distinct values decided in this instance.
    pub distinct_values: Vec<u64>,
    /// Time of the instance's last decision among correct processes.
    pub last_decision: Time,
}

/// Report of a repeated run.
#[derive(Clone, Debug)]
pub struct RepeatedReport {
    /// The run's trace.
    pub trace: Trace,
    /// The run's failure pattern.
    pub fp: FailurePattern,
    /// Per-instance statistics (length = instances iff all completed).
    pub per_instance: Vec<InstanceStats>,
    /// The combined specification outcome: every instance satisfies
    /// validity, k-agreement and termination.
    pub spec: CheckOutcome,
    /// Total messages sent across all instances.
    pub msgs_sent: u64,
}

/// Runs `instances` successive `k`-set agreement instances and checks the
/// specification of every one of them.
///
/// A process's `i`-th decision (in its own decision order) is its
/// instance-`i` decision; validity is checked against [`proposal`].
#[allow(clippy::too_many_arguments)]
pub fn run_repeated(
    n: usize,
    t: usize,
    k: usize,
    instances: u32,
    fp: FailurePattern,
    oracle: impl fd_sim::OracleSuite,
    seed: u64,
    max_time: Time,
) -> RepeatedReport {
    let spec = ScenarioSpec::new(n, t).kz(k).seed(seed).max_time(max_time);
    run_repeated_spec(&spec, instances, fp, oracle)
}

/// As [`run_repeated`], driven by a [`ScenarioSpec`] (the engine-native
/// entry point; `spec.k` is the per-instance agreement degree).
pub fn run_repeated_spec(
    spec: &ScenarioSpec,
    instances: u32,
    fp: FailurePattern,
    oracle: impl fd_sim::OracleSuite,
) -> RepeatedReport {
    let n = spec.n;
    let k = spec.k;
    let correct = fp.correct();
    let want = instances as usize * correct.len();
    let trace = fd_detectors::scenario::run_scenario_until(
        spec,
        &fp,
        |p| RepeatedKset::new(p, instances),
        oracle,
        move |tr| {
            tr.decisions()
                .iter()
                .filter(|d| correct.contains(d.by))
                .count()
                >= want
        },
    );

    // Group decisions: process p's i-th decision belongs to instance i.
    let mut spec = CheckOutcome::pass(None, format!("{instances} instances"));
    let mut per_instance = Vec::new();
    for inst in 0..instances {
        let mut values = Vec::new();
        let mut last = Time::ZERO;
        let mut missing = fd_sim::PSet::new();
        for p in fp.correct() {
            let ds: Vec<_> = trace.decisions().iter().filter(|d| d.by == p).collect();
            match ds.get(inst as usize) {
                None => {
                    missing.insert(p);
                }
                Some(d) => {
                    values.push(d.value);
                    last = last.max(d.at);
                    // Validity: the value is some process's proposal for
                    // this instance.
                    let valid = (0..n).any(|q| d.value == proposal(ProcessId(q), inst));
                    if !valid {
                        spec = spec.and(CheckOutcome::fail_as(
                            fd_detectors::ViolationClass::Validity,
                            format!("instance {inst}: {p} decided foreign value {}", d.value),
                        ));
                    }
                }
            }
        }
        if !missing.is_empty() {
            spec = spec.and(CheckOutcome::fail_as(
                fd_detectors::ViolationClass::Termination,
                format!("instance {inst}: correct {missing} never decided"),
            ));
        }
        values.sort_unstable();
        values.dedup();
        if values.len() > k {
            spec = spec.and(CheckOutcome::fail_as(
                fd_detectors::ViolationClass::Agreement,
                format!(
                    "instance {inst}: {} distinct values (> k = {k})",
                    values.len()
                ),
            ));
        }
        per_instance.push(InstanceStats {
            inst,
            distinct_values: values,
            last_decision: last,
        });
    }
    RepeatedReport {
        msgs_sent: trace.counter(counter::SENT),
        per_instance,
        spec,
        fp,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_detectors::OmegaOracle;

    #[test]
    fn five_instances_all_correct() {
        for seed in 0..3 {
            let fp = FailurePattern::all_correct(5);
            let oracle = OmegaOracle::new(fp.clone(), 1, Time(300), seed);
            let rep = run_repeated(5, 2, 1, 5, fp, oracle, seed, Time(400_000));
            assert!(rep.spec.ok, "seed {seed}: {}", rep.spec);
            assert_eq!(rep.per_instance.len(), 5);
            for s in &rep.per_instance {
                assert_eq!(s.distinct_values.len(), 1, "instance {}", s.inst);
            }
        }
    }

    #[test]
    fn instances_decide_in_order() {
        let fp = FailurePattern::all_correct(4);
        let oracle = OmegaOracle::perfect(fp.clone(), 1, 1);
        let rep = run_repeated(4, 1, 1, 3, fp, oracle, 2, Time(200_000));
        assert!(rep.spec.ok, "{}", rep.spec);
        let mut prev = Time::ZERO;
        for s in &rep.per_instance {
            assert!(s.last_decision >= prev);
            prev = s.last_decision;
        }
    }

    #[test]
    fn crashes_during_instance_zero_do_not_stall_later_ones() {
        for seed in 0..3 {
            let fp = FailurePattern::builder(5)
                .crash(ProcessId(1), Time(40))
                .crash(ProcessId(3), Time(90))
                .build();
            let oracle = OmegaOracle::new(fp.clone(), 1, Time(200), seed);
            let rep = run_repeated(5, 2, 1, 4, fp, oracle, seed, Time(400_000));
            assert!(rep.spec.ok, "seed {seed}: {}", rep.spec);
        }
    }

    #[test]
    fn two_set_repeated() {
        let fp = FailurePattern::all_correct(5);
        let oracle = OmegaOracle::new(fp.clone(), 2, Time(250), 7);
        let rep = run_repeated(5, 2, 2, 3, fp, oracle, 7, Time(400_000));
        assert!(rep.spec.ok, "{}", rep.spec);
        for s in &rep.per_instance {
            assert!(s.distinct_values.len() <= 2);
        }
    }
}
