//! The pre-slab round automata, kept verbatim as a differential reference.
//!
//! [`KsetOmegaRef`] and [`ConsensusMrRef`] are the `HashMap<u32, Vec<…>>`
//! implementations that [`crate::kset_omega::KsetOmega`] and
//! [`crate::consensus_mr::ConsensusMr`] replaced with the bitset slabs of
//! [`crate::rounds`]. They are *not* dead code: `tests/slab_reference.rs`
//! runs both implementations through the full scenario engine and pins
//! their scenario fingerprints bit-for-bit equal across process counts,
//! queue disciplines, thread counts and message adversaries. Any
//! divergence introduced into the slab automata fails that suite.
//!
//! Gated behind the default-on `vec-reference` feature so production
//! builds can shed it with `--no-default-features`.

use crate::spec;
use fd_detectors::scenario::{
    churn_envelope, default_proposals, run_to_decision, salt, ChurnGuarantee, CrashPlan, Flavour,
    OracleVisitor, Scenario, ScenarioReport, ScenarioSpec,
};
use fd_sim::{
    slot, Automaton, Corruptible, Ctx, FailurePattern, FdValue, OracleSuite, PSet, ProcessId,
    SplitMix64,
};
use std::collections::HashMap;

use crate::consensus_mr::MrMsg;
use crate::kset_omega::{KsetMsg, LeaderInput};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KStage {
    Phase1,
    Phase2,
    Done,
}

/// The original Figure 3 process: per-round `Vec` message lists in a
/// `HashMap`, re-scanned on every guard evaluation. Semantics of record.
#[derive(Clone, Debug)]
pub struct KsetOmegaRef {
    est: u64,
    r: u32,
    li: PSet,
    stage: KStage,
    aux: Option<u64>,
    p1: HashMap<u32, Vec<(ProcessId, PSet, u64)>>,
    p2: HashMap<u32, Vec<(ProcessId, Option<u64>)>>,
    decided: bool,
    leader_input: LeaderInput,
    external_leaders: PSet,
}

impl KsetOmegaRef {
    /// Creates the process with its proposal `v_i`.
    pub fn new(proposal: u64) -> Self {
        KsetOmegaRef {
            est: proposal,
            r: 0,
            li: PSet::EMPTY,
            stage: KStage::Done, // set properly in on_start
            aux: None,
            p1: HashMap::new(),
            p2: HashMap::new(),
            decided: false,
            leader_input: LeaderInput::Oracle,
            external_leaders: PSet::EMPTY,
        }
    }

    /// Switches the leader source to [`LeaderInput::External`].
    pub fn with_external_leaders(mut self) -> Self {
        self.leader_input = LeaderInput::External;
        self
    }

    /// Updates the externally supplied leader set (external mode only).
    pub fn set_external_leaders(&mut self, l: PSet) {
        self.external_leaders = l;
    }

    /// Whether this process has decided.
    pub fn has_decided(&self) -> bool {
        self.decided
    }

    /// The current round number (1-based once started).
    pub fn round(&self) -> u32 {
        self.r
    }

    fn read_leaders<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) -> PSet {
        match self.leader_input {
            LeaderInput::Oracle => ctx.trusted(),
            LeaderInput::External => self.external_leaders,
        }
    }

    fn begin_round<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        self.r += 1;
        ctx.publish(slot::ROUND, FdValue::Num(self.r as u64));
        self.li = self.read_leaders(ctx);
        self.stage = KStage::Phase1;
        ctx.broadcast(KsetMsg::Phase1 {
            r: self.r,
            leaders: self.li,
            est: self.est,
        });
    }

    fn try_advance<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        loop {
            match self.stage {
                KStage::Done => return,
                KStage::Phase1 => {
                    let quorum = ctx.n() - ctx.t();
                    let msgs = self.p1.entry(self.r).or_default();
                    if msgs.len() < quorum {
                        return;
                    }
                    let li = self.li;
                    let from_leader = msgs.iter().any(|(from, _, _)| li.contains(*from));
                    if !from_leader && self.read_leaders(ctx) == li {
                        return;
                    }
                    let msgs = &self.p1[&self.r];
                    let mut counts: HashMap<PSet, usize> = HashMap::new();
                    for (_, l, _) in msgs {
                        *counts.entry(*l).or_insert(0) += 1;
                    }
                    let majority = counts
                        .iter()
                        .find(|&(_, &c)| 2 * c > ctx.n())
                        .map(|(&l, _)| l);
                    self.aux = majority.and_then(|l| {
                        msgs.iter()
                            .filter(|(from, _, _)| l.contains(*from))
                            .min_by_key(|(from, _, _)| *from)
                            .map(|&(_, _, v)| v)
                    });
                    self.stage = KStage::Phase2;
                    ctx.broadcast(KsetMsg::Phase2 {
                        r: self.r,
                        aux: self.aux,
                    });
                }
                KStage::Phase2 => {
                    let quorum = ctx.n() - ctx.t();
                    let msgs = self.p2.entry(self.r).or_default();
                    if msgs.len() < quorum {
                        return;
                    }
                    let rec: Vec<Option<u64>> = msgs.iter().map(|&(_, a)| a).collect();
                    if let Some(v) = rec.iter().flatten().min() {
                        self.est = *v;
                    }
                    if rec.iter().all(|a| a.is_some()) {
                        ctx.rb_broadcast(KsetMsg::Decision { v: self.est });
                        self.stage = KStage::Done;
                        return;
                    }
                    self.begin_round(ctx);
                }
            }
        }
    }
}

impl Automaton for KsetOmegaRef {
    type Msg = KsetMsg;

    fn on_start<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        self.begin_round(ctx);
        self.try_advance(ctx);
    }

    fn on_message<O: OracleSuite + ?Sized>(
        &mut self,
        from: ProcessId,
        msg: KsetMsg,
        ctx: &mut Ctx<'_, KsetMsg, O>,
    ) {
        match msg {
            KsetMsg::Phase1 { r, leaders, est } => {
                let v = self.p1.entry(r).or_default();
                if !v.iter().any(|(f, _, _)| *f == from) {
                    v.push((from, leaders, est));
                }
            }
            KsetMsg::Phase2 { r, aux } => {
                let v = self.p2.entry(r).or_default();
                if !v.iter().any(|(f, _)| *f == from) {
                    v.push((from, aux));
                }
            }
            KsetMsg::Decision { v } => self.on_rb_deliver(from, KsetMsg::Decision { v }, ctx),
        }
        self.try_advance(ctx);
    }

    fn on_rb_deliver<O: OracleSuite + ?Sized>(
        &mut self,
        _from: ProcessId,
        msg: KsetMsg,
        ctx: &mut Ctx<'_, KsetMsg, O>,
    ) {
        if let KsetMsg::Decision { v } = msg {
            if !self.decided {
                self.decided = true;
                self.stage = KStage::Done;
                ctx.decide(v);
                ctx.halt();
            }
        }
    }

    fn on_step<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, KsetMsg, O>) {
        self.try_advance(ctx);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MStage {
    AwaitCoord,
    AwaitEchoes,
    Done,
}

/// The original MR `◇S` consensus process (HashMap round state).
#[derive(Clone, Debug)]
pub struct ConsensusMrRef {
    est: u64,
    r: u32,
    stage: MStage,
    coords: HashMap<u32, u64>,
    echoes: HashMap<u32, Vec<(ProcessId, Option<u64>)>>,
    decided: bool,
}

impl ConsensusMrRef {
    /// Creates the process with its proposal.
    pub fn new(proposal: u64) -> Self {
        ConsensusMrRef {
            est: proposal,
            r: 0,
            stage: MStage::Done,
            coords: HashMap::new(),
            echoes: HashMap::new(),
            decided: false,
        }
    }

    /// Whether this process has decided.
    pub fn has_decided(&self) -> bool {
        self.decided
    }

    fn coordinator(&self, n: usize) -> ProcessId {
        ProcessId(((self.r as usize).saturating_sub(1)) % n)
    }

    fn begin_round<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        self.r += 1;
        ctx.publish(slot::ROUND, FdValue::Num(self.r as u64));
        self.stage = MStage::AwaitCoord;
        if self.coordinator(ctx.n()) == ctx.me() {
            ctx.broadcast(MrMsg::Coord {
                r: self.r,
                est: self.est,
            });
        }
    }

    fn try_advance<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        loop {
            match self.stage {
                MStage::Done => return,
                MStage::AwaitCoord => {
                    let c = self.coordinator(ctx.n());
                    let aux = if let Some(&est) = self.coords.get(&self.r) {
                        Some(est)
                    } else if ctx.suspected().contains(c) {
                        None
                    } else {
                        return; // keep waiting
                    };
                    self.stage = MStage::AwaitEchoes;
                    ctx.broadcast(MrMsg::Echo { r: self.r, aux });
                }
                MStage::AwaitEchoes => {
                    let quorum = ctx.n() - ctx.t();
                    let msgs = self.echoes.entry(self.r).or_default();
                    if msgs.len() < quorum {
                        return;
                    }
                    let values: Vec<Option<u64>> = msgs.iter().map(|&(_, a)| a).collect();
                    let non_bot: Vec<u64> = values.iter().flatten().copied().collect();
                    if let Some(&v) = non_bot.first() {
                        self.est = v;
                        if non_bot.len() == values.len() {
                            ctx.rb_broadcast(MrMsg::Decision { v });
                            self.stage = MStage::Done;
                            return;
                        }
                    }
                    self.begin_round(ctx);
                }
            }
        }
    }
}

impl Automaton for ConsensusMrRef {
    type Msg = MrMsg;

    fn on_start<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        self.begin_round(ctx);
        self.try_advance(ctx);
    }

    fn on_message<O: OracleSuite + ?Sized>(
        &mut self,
        from: ProcessId,
        msg: MrMsg,
        ctx: &mut Ctx<'_, MrMsg, O>,
    ) {
        match msg {
            MrMsg::Coord { r, est } => {
                self.coords.entry(r).or_insert(est);
            }
            MrMsg::Echo { r, aux } => {
                let v = self.echoes.entry(r).or_default();
                if !v.iter().any(|(f, _)| *f == from) {
                    v.push((from, aux));
                }
            }
            MrMsg::Decision { v } => self.on_rb_deliver(from, MrMsg::Decision { v }, ctx),
        }
        self.try_advance(ctx);
    }

    fn on_rb_deliver<O: OracleSuite + ?Sized>(
        &mut self,
        _from: ProcessId,
        msg: MrMsg,
        ctx: &mut Ctx<'_, MrMsg, O>,
    ) {
        if let MrMsg::Decision { v } = msg {
            if !self.decided {
                self.decided = true;
                self.stage = MStage::Done;
                ctx.decide(v);
                ctx.halt();
            }
        }
    }

    fn on_step<O: OracleSuite + ?Sized>(&mut self, ctx: &mut Ctx<'_, MrMsg, O>) {
        self.try_advance(ctx);
    }
}

// Corruptible is implemented on the *message* types, which the reference
// automata share with the production ones — the adversary surface is
// identical by construction. These assertions keep that true.
const _: fn(&mut KsetMsg, u64, &mut SplitMix64) -> bool = <KsetMsg as Corruptible>::corrupt;
const _: fn(&mut MrMsg, u64, &mut SplitMix64) -> bool = <MrMsg as Corruptible>::corrupt;

/// [`crate::scenario::KsetScenario`], but running [`KsetOmegaRef`] — same
/// name, same oracle wiring, same check, so its [`ScenarioReport`]
/// fingerprint is directly comparable to the production scenario's.
#[derive(Clone, Copy, Debug, Default)]
pub struct KsetReferenceScenario;

impl Scenario for KsetReferenceScenario {
    fn name(&self) -> &'static str {
        "kset_omega"
    }

    fn cache_tag(&self) -> String {
        // Never share a cache entry with the production scenario.
        "kset_omega_vec_reference".to_owned()
    }

    fn run(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let fp = spec.materialize();
        struct RunKset<'a> {
            spec: &'a ScenarioSpec,
            fp: FailurePattern,
        }
        impl OracleVisitor for RunKset<'_> {
            type Out = ScenarioReport;
            fn visit<O: OracleSuite + 'static>(self, oracle: O) -> ScenarioReport {
                let spec = self.spec;
                let fp = self.fp;
                let proposals = default_proposals(spec.n);
                let trace =
                    run_to_decision(spec, &fp, |p| KsetOmegaRef::new(proposals[p.0]), oracle);
                let check = if matches!(spec.crashes, CrashPlan::Churn { .. }) {
                    churn_envelope(&trace, &fp, spec.k, &proposals, ChurnGuarantee::SafetyOnly)
                } else {
                    spec::kset_spec(&trace, &fp, spec.k, &proposals)
                };
                ScenarioReport::new("kset_omega", spec, fp, trace, check)
            }
        }
        let v = RunKset {
            spec,
            fp: fp.clone(),
        };
        spec.with_oracle(&fp, v)
    }
}

/// [`crate::scenario::ConsensusScenario`], but running [`ConsensusMrRef`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsensusReferenceScenario;

impl Scenario for ConsensusReferenceScenario {
    fn name(&self) -> &'static str {
        "consensus_mr"
    }

    fn cache_tag(&self) -> String {
        "consensus_mr_vec_reference".to_owned()
    }

    fn run(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let fp = spec.materialize();
        let proposals = default_proposals(spec.n);
        let oracle = spec.sx_oracle(&fp, spec.n, Flavour::Eventual, salt::DIAMOND_S);
        let trace = run_to_decision(spec, &fp, |p| ConsensusMrRef::new(proposals[p.0]), oracle);
        let check = spec::kset_spec(&trace, &fp, 1, &proposals);
        ScenarioReport::new(self.name(), spec, fp, trace, check)
    }
}
