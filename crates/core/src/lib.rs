//! # fd-core — the paper's set-agreement algorithms
//!
//! The primary contribution of *"Irreducibility and Additivity of Set
//! Agreement-oriented Failure Detector Classes"* (PODC 2006), §3: an
//! `Ω_k`-based `k`-set agreement algorithm (paper Figure 3), together with
//! the problem-specification checkers and the `◇S` consensus baseline it
//! generalizes.
//!
//! * [`KsetOmega`] — the Figure 3 algorithm (two-phase rounds on top of an
//!   `Ω_z` oracle, `t < n/2`, at most `k ≥ z` distinct decisions);
//! * [`ConsensusMr`] — the Mostéfaoui–Raynal `◇S` quorum-based consensus
//!   (the paper's reference [18]), used as a baseline;
//! * [`spec`] — validity / k-agreement / termination checkers;
//! * [`scenario`] — the [`Scenario`](fd_detectors::Scenario)
//!   implementations driving the algorithms through the unified engine;
//! * [`harness`] — thin one-call adapters over the engine.
//!
//! ## Example
//!
//! ```
//! use fd_core::harness::{kset_config, run_kset_omega};
//!
//! // 2-set agreement among 5 processes with an adversarial Ω_2.
//! let report = run_kset_omega(&kset_config(5, 2, 2).seed(42));
//! assert!(report.check.ok, "{}", report.check);
//! assert!(report.metrics.decided_values.len() <= 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod consensus_mr;
pub mod harness;
pub mod kset_omega;
pub mod lower_bound;
#[cfg(feature = "vec-reference")]
pub mod reference;
pub mod repeated;
pub mod rounds;
pub mod scenario;
pub mod spec;

pub use consensus_mr::{ConsensusMr, MrMsg};
pub use harness::{kset_config, run_consensus_mr, run_kset_omega, CrashPlan};
pub use kset_omega::{KsetMsg, KsetOmega, LeaderInput};
#[cfg(feature = "vec-reference")]
pub use reference::{
    ConsensusMrRef, ConsensusReferenceScenario, KsetOmegaRef, KsetReferenceScenario,
};
pub use repeated::{run_repeated, run_repeated_spec, RepMsg, RepeatedKset, RepeatedReport};
pub use rounds::{CoordSlab, EchoSlab, Phase1Slab, Phase2Slab, RoundSlab, RoundWindow};
pub use scenario::{run_kset_with, ConsensusScenario, KsetScenario, RepeatedScenario};
